(* Live metrics plane: interval snapshots of the counter/gauge stores
   with per-counter deltas and rates, rendered either as one JSON line
   per snapshot (the Serve.Driver live-metrics stream) or as Prometheus
   text exposition (for scraping / humans). Reads the same interned
   stores the runtime writes, so a snapshot is just two sorted assoc
   lists — cheap enough to take every few hundred ms during a serve
   run. *)

type snapshot = {
  at_s : float;  (* Clock.now_s at capture *)
  counters : (string * int) list;
  gauges : (string * int) list;
}

let take () =
  { at_s = Clock.now_s (); counters = Counter.all (); gauges = Gauge.all () }

(* per-counter increase since [prev]; counters absent from [prev] count
   from zero (they were created mid-interval) *)
let deltas ~prev snap =
  List.map
    (fun (n, v) ->
      let p = match List.assoc_opt n prev.counters with
        | Some p -> p
        | None -> 0
      in
      (n, v - p))
    snap.counters

let jsonl ?prev snap =
  let b = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let obj pairs render =
    List.iteri
      (fun i (n, v) ->
        if i > 0 then pr ",";
        pr "\"%s\":%s" (Json_check.escape n) (render v))
      pairs
  in
  pr "{\"at_s\":%s," (Json_check.float_repr snap.at_s);
  pr "\"counters\":{";
  obj snap.counters string_of_int;
  pr "},\"gauges\":{";
  obj snap.gauges string_of_int;
  pr "}";
  (match prev with
  | None -> ()
  | Some prev ->
    let interval = snap.at_s -. prev.at_s in
    let ds = deltas ~prev snap in
    pr ",\"interval_s\":%s" (Json_check.float_repr interval);
    pr ",\"deltas\":{";
    obj ds string_of_int;
    pr "},\"rates\":{";
    obj ds (fun d ->
        Json_check.float_repr
          (if interval > 0.0 then float_of_int d /. interval else 0.0));
    pr "}");
  pr "}";
  Buffer.contents b

(* ---- Prometheus text exposition ---------------------------------------- *)

(* metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* Prometheus label values escape backslash, double-quote and newline —
   and nothing else (the text format is not JSON) *)
let escape_label s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prometheus () =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun (n, v) ->
      let m = sanitize n in
      pr "# TYPE %s counter\n%s %d\n" m m v)
    (Counter.all ());
  List.iter
    (fun (n, v) ->
      let m = sanitize n in
      pr "# TYPE %s gauge\n%s %d\n" m m v)
    (Gauge.all ());
  List.iter
    (fun h ->
      if Histogram.count h > 0 then begin
        let m = sanitize (Histogram.name h) in
        (* real cumulative-bucket histogram exposition (the old summary
           rendering hid the distribution behind four quantiles) *)
        pr "# TYPE %s histogram\n" m;
        let cum = ref 0 in
        List.iter
          (fun (ub, c) ->
            cum := !cum + c;
            pr "%s_bucket{le=\"%s\"} %d\n" m
              (escape_label (Json_check.float_repr ub))
              !cum)
          (Histogram.buckets h);
        pr "%s_bucket{le=\"+Inf\"} %d\n" m (Histogram.count h);
        pr "%s_sum %s\n" m (Json_check.float_repr (Histogram.sum h));
        pr "%s_count %d\n" m (Histogram.count h)
      end)
    (Histogram.all ());
  (* exemplars: worst retained trace per latency metric, so a scrape can
     jump from a tail bucket straight to its causal timeline *)
  (match Trace.all_exemplars () with
  | [] -> ()
  | ms ->
    pr "# TYPE parlooper_trace_exemplar gauge\n";
    List.iter
      (fun (metric, _) ->
        match Trace.worst ~metric with
        | None -> ()
        | Some (id, v) ->
          pr "parlooper_trace_exemplar{metric=\"%s\",trace_id=\"%d\"} %s\n"
            (escape_label metric) id (Json_check.float_repr v))
      ms);
  Buffer.contents b

(* ---- exposition validator (Json_check-style) --------------------------- *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let is_label_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_label_char c = is_label_start c || (c >= '0' && c <= '9')

let valid_name s =
  s <> ""
  && is_name_start s.[0]
  && String.for_all is_name_char s

(* Validate one sample line (name, optional {labels}, value): label
   values must be double-quoted with only backslash/quote/n escapes, the
   value must parse as a float. Returns an error message or None. *)
let check_sample line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do
    incr i
  done;
  if !i = 0 || not (is_name_start line.[0]) then
    Some (Printf.sprintf "bad metric name in %S" line)
  else begin
    let err = ref None in
    (if !i < n && line.[!i] = '{' then begin
       incr i;
       let expect_label = ref true in
       while !err = None && !expect_label do
         let s = !i in
         while !i < n && is_label_char line.[!i] do
           incr i
         done;
         if !i = s || not (!i < n && line.[!i] = '=') then
           err := Some (Printf.sprintf "bad label name in %S" line)
         else begin
           incr i;
           if not (!i < n && line.[!i] = '"') then
             err := Some (Printf.sprintf "unquoted label value in %S" line)
           else begin
             incr i;
             let closed = ref false in
             while (not !closed) && !err = None do
               if !i >= n then
                 err :=
                   Some (Printf.sprintf "unterminated label value in %S" line)
               else
                 match line.[!i] with
                 | '"' ->
                   closed := true;
                   incr i
                 | '\\' ->
                   if
                     !i + 1 < n
                     && (line.[!i + 1] = '\\' || line.[!i + 1] = '"'
                        || line.[!i + 1] = 'n')
                   then i := !i + 2
                   else
                     err :=
                       Some (Printf.sprintf "bad escape in label of %S" line)
                 | '\n' ->
                   err :=
                     Some (Printf.sprintf "raw newline in label of %S" line)
                 | _ -> incr i
             done;
             if !err = None then
               if !i < n && line.[!i] = ',' then incr i
               else if !i < n && line.[!i] = '}' then begin
                 incr i;
                 expect_label := false
               end
               else if !err = None then
                 err := Some (Printf.sprintf "bad label separator in %S" line)
           end
         end
       done
     end);
    match !err with
    | Some _ as e -> e
    | None ->
      let rest = String.sub line !i (n - !i) in
      let rest = String.trim rest in
      if rest = "" then Some (Printf.sprintf "missing value in %S" line)
      else if float_of_string_opt rest = None then
        Some (Printf.sprintf "bad value %S in %S" rest line)
      else None
  end

(* Whole-exposition validator: every # TYPE line well-formed with a known
   type, every sample line well-formed and preceded by a # TYPE for its
   family (allowing the _bucket/_sum/_count suffixes). *)
let check text =
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let lines = String.split_on_char '\n' text in
  let base name =
    let strip suf =
      let sl = String.length suf and nl = String.length name in
      if nl > sl && String.sub name (nl - sl) sl = suf then
        Some (String.sub name 0 (nl - sl))
      else None
    in
    match strip "_bucket" with
    | Some b -> b
    | None -> (
      match strip "_sum" with
      | Some b -> b
      | None -> ( match strip "_count" with Some b -> b | None -> name))
  in
  let rec go = function
    | [] -> Ok ()
    | "" :: rest -> go rest
    | line :: rest when String.length line > 0 && line.[0] = '#' -> (
      match String.split_on_char ' ' line with
      | "#" :: "TYPE" :: name :: [ ty ] ->
        if not (valid_name name) then
          Error (Printf.sprintf "bad metric name in %S" line)
        else if
          not (List.mem ty [ "counter"; "gauge"; "histogram"; "summary" ])
        then Error (Printf.sprintf "unknown type %S in %S" ty line)
        else begin
          Hashtbl.replace typed name ();
          go rest
        end
      | "#" :: "HELP" :: _ -> go rest
      | _ -> Error (Printf.sprintf "bad comment line %S" line))
    | line :: rest -> (
      match check_sample line with
      | Some e -> Error e
      | None ->
        let n = String.length line in
        let i = ref 0 in
        while !i < n && is_name_char line.[!i] do
          incr i
        done;
        let name = String.sub line 0 !i in
        if Hashtbl.mem typed name || Hashtbl.mem typed (base name) then go rest
        else Error (Printf.sprintf "sample %S has no # TYPE line" name))
  in
  go lines

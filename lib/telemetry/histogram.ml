(* Log-bucketed latency/value histograms, interned in a global table like
   Counter so any domain or systhread can observe into the same histogram.
   Buckets are geometrically spaced (growth factor 2^(1/8), ~9% relative
   resolution) covering [1e-9, ~1e9); observations outside clamp to the
   edge buckets. Quantiles are answered from the bucket counts with the
   bucket's geometric midpoint as representative, clamped to the exact
   observed [min, max] so degenerate distributions report exactly. *)

let growth = Float.exp (Float.log 2.0 /. 8.0)
let log_growth = Float.log growth
let lo = 1e-9
let n_buckets = 480 (* lo * growth^480 ~ 1.2e9 *)

type t = {
  hname : string;
  lock : Mutex.t;
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let table : (string, t) Hashtbl.t = Hashtbl.create 16
let table_lock = Mutex.create ()

let make name =
  { hname = name; lock = Mutex.create (); buckets = Array.make n_buckets 0;
    count = 0; sum = 0.0; min_v = Float.infinity;
    max_v = Float.neg_infinity }

let find_or_create name =
  Mutex.lock table_lock;
  let h =
    match Hashtbl.find_opt table name with
    | Some h -> h
    | None ->
      let h = make name in
      Hashtbl.replace table name h;
      h
  in
  Mutex.unlock table_lock;
  h

let name h = h.hname

let bucket_of v =
  if not (v > lo) then 0
  else
    let i = int_of_float (Float.log (v /. lo) /. log_growth) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

(* geometric midpoint of bucket i: lo * growth^(i + 1/2) *)
let representative i =
  lo *. Float.exp ((float_of_int i +. 0.5) *. log_growth)

let observe h v =
  Mutex.lock h.lock;
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  Mutex.unlock h.lock

(* upper bound of bucket i: lo * growth^(i+1) *)
let upper_bound i = lo *. Float.exp (float_of_int (i + 1) *. log_growth)

let buckets h =
  Mutex.lock h.lock;
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then acc := (upper_bound i, h.buckets.(i)) :: !acc
  done;
  Mutex.unlock h.lock;
  !acc

let count h = h.count
let sum h = h.sum
let mean h = if h.count > 0 then h.sum /. float_of_int h.count else Float.nan
let min_value h = if h.count > 0 then h.min_v else Float.nan
let max_value h = if h.count > 0 then h.max_v else Float.nan

let quantile h q =
  Mutex.lock h.lock;
  let r =
    if h.count = 0 then Float.nan
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      (* nearest-rank over the bucketed distribution *)
      let rank = int_of_float (Float.round (q *. float_of_int (h.count - 1))) in
      let acc = ref 0 and found = ref (n_buckets - 1) in
      (try
         for i = 0 to n_buckets - 1 do
           acc := !acc + h.buckets.(i);
           if !acc > rank then begin
             found := i;
             raise Exit
           end
         done
       with Exit -> ());
      Float.max h.min_v (Float.min h.max_v (representative !found))
    end
  in
  Mutex.unlock h.lock;
  r

let merge_into src ~into =
  if src != into then begin
    (* consistent lock order so concurrent opposite merges cannot deadlock *)
    let first, second =
      if src.hname < into.hname then (src, into) else (into, src)
    in
    Mutex.lock first.lock;
    Mutex.lock second.lock;
    for i = 0 to n_buckets - 1 do
      into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
    done;
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v;
    Mutex.unlock second.lock;
    Mutex.unlock first.lock
  end

let all () =
  Mutex.lock table_lock;
  let l = Hashtbl.fold (fun _ h acc -> h :: acc) table [] in
  Mutex.unlock table_lock;
  List.sort (fun a b -> compare a.hname b.hname) l

let reset h =
  Mutex.lock h.lock;
  Array.fill h.buckets 0 n_buckets 0;
  h.count <- 0;
  h.sum <- 0.0;
  h.min_v <- Float.infinity;
  h.max_v <- Float.neg_infinity;
  Mutex.unlock h.lock

let reset_all () = List.iter reset (all ())

(** Text and JSON summaries of everything the registry collected. Pass
    [peak_gflops] / [mem_bw_gbs] (e.g. from a {!Platform.t}) to add
    roofline context to the per-kernel achieved-GFLOPS lines. *)

val summary : ?peak_gflops:float -> ?mem_bw_gbs:float -> unit -> string
val print : ?peak_gflops:float -> ?mem_bw_gbs:float -> unit -> unit
val to_json : ?peak_gflops:float -> ?mem_bw_gbs:float -> unit -> string

(** Attainable GFLOPS at arithmetic intensity [ai] (flops/byte). *)
val roofline : peak_gflops:float -> mem_bw_gbs:float -> float -> float

(** JSON helpers shared with {!Chrome_trace}. *)
val json_escape : string -> string

val json_float : float -> string

(* Named atomic gauges — point-in-time levels (queue depth, KV rows in
   use) as opposed to monotonically increasing {!Counter}s. Keeping them
   in a separate store lets {!Report} and {!Expose} render them with the
   correct metric type instead of pretending a level is a count. Same
   interning discipline as Counter: [find_or_create] always returns the
   same cell for a name, so modules cache the handle and update lock-free. *)

type t = { name : string; cell : int Atomic.t }

let table : (string, t) Hashtbl.t = Hashtbl.create 32
let lock = Mutex.create ()

let find_or_create name =
  Mutex.lock lock;
  let g =
    match Hashtbl.find_opt table name with
    | Some g -> g
    | None ->
      let g = { name; cell = Atomic.make 0 } in
      Hashtbl.replace table name g;
      g
  in
  Mutex.unlock lock;
  g

let name t = t.name
let set t v = Atomic.set t.cell v
let add t n = ignore (Atomic.fetch_and_add t.cell n)
let incr t = add t 1
let decr t = add t (-1)
let get t = Atomic.get t.cell

(* value by name; 0 if the gauge was never created *)
let value name =
  Mutex.lock lock;
  let v =
    match Hashtbl.find_opt table name with
    | Some g -> Atomic.get g.cell
    | None -> 0
  in
  Mutex.unlock lock;
  v

let all () =
  Mutex.lock lock;
  let l =
    Hashtbl.fold (fun name g acc -> (name, Atomic.get g.cell) :: acc) table []
  in
  Mutex.unlock lock;
  List.sort compare l

let reset_all () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ g -> Atomic.set g.cell 0) table;
  Mutex.unlock lock

(* Request-scoped causal tracing over the flight recorder.

   Every serving-layer seam tags its recorder events with the request's
   trace id in operand [a] (the Trace_* kinds), so a trace is nothing
   but a filter over the merged ring snapshot — the hot path stays the
   recorder's five unsafe stores and the assembler runs entirely
   off-line. This module owns the three pieces that are not per-event:

   - the tail-based sampling policy: a trace is retained in full only
     when its request breached an SLO, hit a fault site, was shed, or
     was migrated — plus a seeded 1-in-N baseline draw so healthy
     requests stay represented. Everything else keeps only its counter
     and histogram contributions, never a per-request timeline.
   - exemplars: each TTFT/TPOT histogram observation may nominate its
     trace id for the log-bucket it landed in (max value wins), so a
     tail percentile is one lookup away from a causal explanation.
   - the assembler: per-id timelines (text + Chrome, one process lane
     per replica via the recorder's "replica:<i>" label convention), a
     span-tree conservation check, and an on-disk dump the
     [parlooper_cli trace] subcommands read back. *)

let metric_ttft = "ttft"
let metric_tpot = "tpot"

let is_trace_kind = function
  | Recorder.Trace_queued | Recorder.Trace_routed | Recorder.Trace_prefill
  | Recorder.Trace_handoff | Recorder.Trace_decode | Recorder.Trace_spec
  | Recorder.Trace_kv | Recorder.Trace_retry | Recorder.Trace_shed
  | Recorder.Trace_detach | Recorder.Trace_import | Recorder.Trace_resume
  | Recorder.Trace_end ->
    true
  | _ -> false

(* ---- lane labels ------------------------------------------------------- *)

(* interning takes a lock, so cache the replica labels we hand out *)
let replica_lbl_lock = Mutex.create ()
let replica_lbls : (int, int) Hashtbl.t = Hashtbl.create 16

let replica_label i =
  Mutex.lock replica_lbl_lock;
  let l =
    match Hashtbl.find_opt replica_lbls i with
    | Some l -> l
    | None ->
      let l = Recorder.intern (Printf.sprintf "replica:%d" i) in
      Hashtbl.replace replica_lbls i l;
      l
  in
  Mutex.unlock replica_lbl_lock;
  l

let solo_label = Recorder.intern "serve"
let router_label = Recorder.intern "cluster.router"

(* ---- terminal-state vocabulary ----------------------------------------- *)

(* mirrors Serve.Request.state (state_code there must agree) *)
let state_name = function
  | 0 -> "queued"
  | 1 -> "prefilling"
  | 2 -> "decoding"
  | 3 -> "finished"
  | 4 -> "rejected"
  | 5 -> "cancelled"
  | 6 -> "failed"
  | n -> Printf.sprintf "state%d" n

let state_finished = 3

(* ---- tail-based sampling ------------------------------------------------ *)

let ret_lock = Mutex.create ()
let retention : (int, string) Hashtbl.t = Hashtbl.create 64
let baseline_ref = ref 16
let seed_ref = ref 0x5452

let set_baseline n = baseline_ref := max 0 n
let set_seed s = seed_ref := s

let splitmix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* deterministic 1-in-N draw keyed by (seed, id): the same run retains
   the same baseline ids on every host *)
let baseline_hit id =
  let n = !baseline_ref in
  n > 0
  &&
  let h = splitmix64 (Int64.of_int ((id * 0x9E3779B9) lxor !seed_ref)) in
  Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int n) = 0L

let retain ~id ~reason =
  Mutex.lock ret_lock;
  (* first reason wins: "fault_retry" set mid-flight is more causal than
     the terminal "deadline_breach" that usually follows it *)
  if not (Hashtbl.mem retention id) then Hashtbl.replace retention id reason;
  Mutex.unlock ret_lock

let retention_reason id =
  Mutex.lock ret_lock;
  let r = Hashtbl.find_opt retention id in
  Mutex.unlock ret_lock;
  r

let is_retained id = retention_reason id <> None

let retained () =
  Mutex.lock ret_lock;
  let l = Hashtbl.fold (fun id r acc -> (id, r) :: acc) retention [] in
  Mutex.unlock ret_lock;
  List.sort compare l

(* Emit the terminal span event and apply the retention policy: an
   explicit [reason] (SLO breach, shed, fault, migration…) always
   retains; otherwise the request only survives the baseline draw. *)
let terminal ~id ~label ~state ?reason () =
  Recorder.emit Recorder.Trace_end ~label ~a:id ~b:state;
  match reason with
  | Some r -> retain ~id ~reason:r
  | None -> if baseline_hit id then retain ~id ~reason:"baseline"

(* ---- exemplars ---------------------------------------------------------- *)

let ex_lock = Mutex.create ()

let ex_tbl : (string, (int, float * int) Hashtbl.t) Hashtbl.t =
  Hashtbl.create 8

(* same geometric spirit as Histogram's buckets: ~9% relative resolution *)
let ex_bucket v =
  if not (v > 0.0) then min_int
  else int_of_float (Float.round (16.0 *. Float.log v))

let exemplar ~metric ~value_ms ~id =
  Mutex.lock ex_lock;
  let t =
    match Hashtbl.find_opt ex_tbl metric with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 32 in
      Hashtbl.replace ex_tbl metric t;
      t
  in
  let bkt = ex_bucket value_ms in
  (match Hashtbl.find_opt t bkt with
  | Some (v, _) when v >= value_ms -> ()
  | _ -> Hashtbl.replace t bkt (value_ms, id));
  Mutex.unlock ex_lock

let exemplars ~metric =
  Mutex.lock ex_lock;
  let l =
    match Hashtbl.find_opt ex_tbl metric with
    | None -> []
    | Some t -> Hashtbl.fold (fun _ vi acc -> vi :: acc) t []
  in
  Mutex.unlock ex_lock;
  List.sort (fun (v1, _) (v2, _) -> compare (v2 : float) v1) l

let all_exemplars () =
  Mutex.lock ex_lock;
  let ms = Hashtbl.fold (fun m _ acc -> m :: acc) ex_tbl [] in
  Mutex.unlock ex_lock;
  List.sort compare ms |> List.map (fun m -> (m, exemplars ~metric:m))

(* worst retained trace for a metric: the highest exemplar value whose
   id survived tail sampling (every breacher is retained, so the true
   worst is always resolvable) *)
let worst ~metric =
  let rec go = function
    | [] -> None
    | (v, id) :: rest -> if is_retained id then Some (id, v) else go rest
  in
  go (exemplars ~metric)

(* ---- assembler ---------------------------------------------------------- *)

let timelines () =
  let tl : (int, Recorder.event list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if is_trace_kind e.Recorder.ekind then
        Hashtbl.replace tl e.Recorder.a
          (e
          ::
          (match Hashtbl.find_opt tl e.Recorder.a with
          | Some l -> l
          | None -> [])))
    (Recorder.events ());
  Hashtbl.fold (fun id rev acc -> (id, List.rev rev) :: acc) tl []
  |> List.sort compare

let timeline id =
  match List.assoc_opt id (timelines ()) with Some l -> l | None -> []

let ids () = List.map fst (timelines ())

let decode_spans evs =
  List.length
    (List.filter
       (fun e ->
         match e.Recorder.ekind with
         | Recorder.Trace_decode | Recorder.Trace_spec -> true
         | _ -> false)
       evs)

let detail e =
  let b = e.Recorder.b in
  match e.Recorder.ekind with
  | Recorder.Trace_queued -> Printf.sprintf "depth=%d" b
  | Recorder.Trace_routed -> Printf.sprintf "replica=%d" b
  | Recorder.Trace_prefill -> Printf.sprintf "rows=%d" b
  | Recorder.Trace_handoff -> Printf.sprintf "depth=%d" b
  | Recorder.Trace_decode -> Printf.sprintf "batch=%d" b
  | Recorder.Trace_spec -> Printf.sprintf "accepted=%d" b
  | Recorder.Trace_kv ->
    if b >= 0 then Printf.sprintf "rows=%d" b else "denied"
  | Recorder.Trace_retry -> Printf.sprintf "attempt=%d" b
  | Recorder.Trace_shed -> Printf.sprintf "eff_batch=%d" b
  | Recorder.Trace_detach -> Printf.sprintf "emitted=%d" b
  | Recorder.Trace_import -> Printf.sprintf "rows=%d" b
  | Recorder.Trace_resume -> Printf.sprintf "replica=%d" b
  | Recorder.Trace_end -> Printf.sprintf "state=%s" (state_name b)
  | _ -> Printf.sprintf "a=%d b=%d" e.Recorder.a b

let text_of_timeline_events ~id ?reason evs =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "# parlooper trace %d\n" id;
  (match reason with
  | Some r -> pr "# retained: %s\n" r
  | None -> ());
  pr "# %d event%s, %d decode span%s\n" (List.length evs)
    (if List.length evs = 1 then "" else "s")
    (decode_spans evs)
    (if decode_spans evs = 1 then "" else "s");
  let t0 = match evs with [] -> 0 | e :: _ -> e.Recorder.t_ns in
  pr "#   rel_ms  lane             event           detail\n";
  List.iter
    (fun e ->
      let lane =
        if e.Recorder.label = "" then "-" else e.Recorder.label
      in
      pr "%10.3f  %-16s %-15s %s\n"
        (float_of_int (e.Recorder.t_ns - t0) /. 1e6)
        lane
        (Recorder.kind_name e.Recorder.ekind)
        (detail e))
    evs;
  Buffer.contents b

let text_of_timeline ?reason id =
  let reason =
    match reason with Some _ -> reason | None -> retention_reason id
  in
  text_of_timeline_events ~id ?reason (timeline id)

let chrome_of_timeline id =
  Recorder.trace_of_events
    ~reason:(Printf.sprintf "trace %d" id)
    (timeline id)

(* ---- span-tree conservation --------------------------------------------- *)

(* A complete, well-nested trace: opens with trace_queued, closes with
   exactly one trace_end, decodes only after a prefill (or a migration
   resume), and migration joins balance — a resume needs its detach, and
   a finished request cannot leave a detach unresumed. *)
let check_events evs =
  match evs with
  | [] -> Error "no trace events"
  | first :: _ ->
    let count k =
      List.length (List.filter (fun e -> e.Recorder.ekind = k) evs)
    in
    let last = List.nth evs (List.length evs - 1) in
    if first.Recorder.ekind <> Recorder.Trace_queued then
      Error
        (Printf.sprintf "first event is %s, not trace_queued"
           (Recorder.kind_name first.Recorder.ekind))
    else if count Recorder.Trace_end <> 1 then
      Error
        (Printf.sprintf "%d trace_end events (want exactly 1)"
           (count Recorder.Trace_end))
    else if last.Recorder.ekind <> Recorder.Trace_end then
      Error "trace_end is not the last event"
    else begin
      let detaches = count Recorder.Trace_detach in
      let resumes = count Recorder.Trace_resume in
      if resumes > detaches then
        Error
          (Printf.sprintf "%d resumes for %d detaches" resumes detaches)
      else if last.Recorder.b = state_finished && detaches > resumes then
        Error
          (Printf.sprintf
             "finished with %d detach(es) but only %d resume(s)" detaches
             resumes)
      else begin
        let seen_prefill = ref false and bad = ref None in
        List.iter
          (fun e ->
            match e.Recorder.ekind with
            | Recorder.Trace_prefill | Recorder.Trace_resume ->
              seen_prefill := true
            | Recorder.Trace_decode | Recorder.Trace_spec ->
              if not !seen_prefill then
                bad := Some "decode span before prefill/resume"
            | _ -> ())
          evs;
        match !bad with Some m -> Error m | None -> Ok ()
      end
    end

let check id =
  match timeline id with
  | [] -> Error (Printf.sprintf "trace %d: no trace events" id)
  | evs -> (
    match check_events evs with
    | Ok () -> Ok ()
    | Error m -> Error (Printf.sprintf "trace %d: %s" id m))

(* ---- on-disk dump -------------------------------------------------------- *)

let write_file path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

(* Write every retained trace (that still has ring events) under [dir]:
   trace-<id>.txt, trace-<id>.trace.json (validated), plus index.txt
   ("id reason events decode_spans" rows) and exemplars.txt
   ("metric value_ms id" rows, worst first) for the CLI to read back.
   Returns the number of traces written. *)
let dump ~dir =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let tls = timelines () in
  let written = ref 0 in
  let idx = Buffer.create 512 in
  Buffer.add_string idx "# parlooper trace index: id reason events decode_spans\n";
  List.iter
    (fun (id, reason) ->
      match List.assoc_opt id tls with
      | None | Some [] -> () (* ring-evicted before the dump; nothing left *)
      | Some evs ->
        Buffer.add_string idx
          (Printf.sprintf "%d %s %d %d\n" id reason (List.length evs)
             (decode_spans evs));
        write_file
          (Filename.concat dir (Printf.sprintf "trace-%d.txt" id))
          (text_of_timeline_events ~id ~reason evs);
        let tr =
          Recorder.trace_of_events
            ~reason:(Printf.sprintf "trace %d (%s)" id reason)
            evs
        in
        Json_check.validate tr;
        write_file
          (Filename.concat dir (Printf.sprintf "trace-%d.trace.json" id))
          tr;
        incr written)
    (retained ());
  write_file (Filename.concat dir "index.txt") (Buffer.contents idx);
  let exb = Buffer.create 512 in
  Buffer.add_string exb "# parlooper trace exemplars: metric value_ms id\n";
  List.iter
    (fun (m, l) ->
      List.iter
        (fun (v, id) ->
          (* only link traces the tail sampler actually kept: every row
             here resolves to a trace-<id>.txt next to it *)
          if is_retained id then
            Buffer.add_string exb
              (Printf.sprintf "%s %s %d\n" m (Json_check.float_repr v) id))
        l)
    (all_exemplars ());
  write_file (Filename.concat dir "exemplars.txt") (Buffer.contents exb);
  !written

let reset () =
  Mutex.lock ret_lock;
  Hashtbl.reset retention;
  Mutex.unlock ret_lock;
  Mutex.lock ex_lock;
  Hashtbl.reset ex_tbl;
  Mutex.unlock ex_lock

(** Chrome [trace_event] JSON export of the recorded spans: load the file
    in [chrome://tracing] (or https://ui.perfetto.dev) to see per-thread,
    per-loop-nest timelines. Each span becomes a complete ("X") event;
    thread tracks are labelled [main] / [worker-N]. *)

val to_string : unit -> string
val write : string -> unit

(** Global aggregation of runtime telemetry: the master enable switch,
    per-kernel-instance flops/bytes/time accumulation (achieved GFLOPS),
    and perf-model predicted-vs-measured records. All entry points are
    thread- and domain-safe. *)

type kernel_stat = {
  kind : string;  (** "gemm", "conv", "mlp", "spmm" *)
  instance : string;  (** shape/dtype/spec identity *)
  mutable invocations : int;
  mutable flops : float;
  mutable bytes : float;
  mutable seconds : float;
}

type prediction = {
  pname : string;
  predicted_gflops : float;
  measured_gflops : float;
}

(** Enable/disable span recording and kernel-stat collection. Counters
    (e.g. the JIT cache's) are always live — they are cheap atomics. *)
val enable : unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** [with_enabled f] runs [f] with telemetry on, disabling on the way out. *)
val with_enabled : (unit -> 'a) -> 'a

(** Accumulate one kernel run into the (kind, instance) bucket. *)
val record_kernel :
  kind:string ->
  instance:string ->
  flops:float ->
  bytes:float ->
  seconds:float ->
  unit

val kernel_stats : unit -> kernel_stat list
val gflops : kernel_stat -> float
val arithmetic_intensity : kernel_stat -> float

val record_prediction :
  name:string -> predicted_gflops:float -> measured_gflops:float -> unit

val predictions : unit -> prediction list

(** Signed relative model error; positive = model over-predicts. *)
val deviation : prediction -> float

val mean_abs_deviation : prediction list -> float

(** Well-known counter names written by the PARLOOPER runtime. *)
val jit_hits_name : string

val jit_misses_name : string
val jit_evictions_name : string
val jit_compile_ns_name : string
val barrier_wait_ns_name : string

(** Counter names written by the persistent worker pool (Team): jobs
    dispatched to pool workers, jobs run by an already-warm worker
    (reuse), wake-ups satisfied in the spin phase vs after parking, and
    total workers ever spawned. [pool_dispatch_ns_name] is a histogram of
    per-team dispatch latency (run start to last worker picking up its
    job), fed only while the registry is enabled. *)
val pool_dispatches_name : string

val pool_reuse_name : string
val pool_spin_name : string
val pool_park_name : string
val pool_workers_name : string
val pool_dispatch_ns_name : string

(** Counter names written by the TPP scratch arena: leases served from a
    warm buffer, leases that had to allocate, and cumulative bytes
    allocated by misses. *)
val arena_hits_name : string

val arena_misses_name : string
val arena_bytes_name : string

(** Counter names for the fault-injection / robustness layer: faults fired
    by lib/fault, scheduler retries and load-shedding events, watchdog
    warnings, pool workers quarantined after a death or stall, and NaN/Inf
    detections by the TPP numeric guard. *)
val fault_injected_name : string

val fault_retries_name : string
val fault_shed_name : string
val watchdog_trips_name : string
val pool_quarantined_name : string
val numeric_errors_name : string

(** Counter names for the model-guided tuner: candidates generated, pruned
    (illegal / duplicate / over budget) and model-scored by the search, and
    candidates promoted to real measurement. *)
val tuner_search_generated_name : string

val tuner_search_pruned_name : string
val tuner_search_scored_name : string
val tuner_search_measured_name : string

(** Counter names for the online per-shape spec cache in the serve path:
    lookups served from a published spec, first-arrival misses (default
    spec served, shape queued for background tuning), hot-swaps published
    after the bit-identity gate passed, candidate specs rejected by that
    gate, and background tunes completed. *)
val tuner_cache_hits_name : string

val tuner_cache_misses_name : string
val tuner_cache_swaps_name : string
val tuner_cache_rejected_name : string
val tuner_cache_tunes_name : string

(** Counter of spans discarded once the bounded span store is full
    (= {!Span.dropped_name}). *)
val spans_dropped_name : string

(** Clear kernel stats, predictions, spans, recorder rings and zero all
    counters, gauges and histograms. *)
val reset : unit -> unit

(** Global aggregation of runtime telemetry: the master enable switch,
    per-kernel-instance flops/bytes/time accumulation (achieved GFLOPS),
    and perf-model predicted-vs-measured records. All entry points are
    thread- and domain-safe. *)

type kernel_stat = {
  kind : string;  (** "gemm", "conv", "mlp", "spmm" *)
  instance : string;  (** shape/dtype/spec identity *)
  mutable invocations : int;
  mutable flops : float;
  mutable bytes : float;
  mutable seconds : float;
}

type prediction = {
  pname : string;
  predicted_gflops : float;
  measured_gflops : float;
}

(** Enable/disable span recording and kernel-stat collection. Counters
    (e.g. the JIT cache's) are always live — they are cheap atomics. *)
val enable : unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** [with_enabled f] runs [f] with telemetry on, disabling on the way out. *)
val with_enabled : (unit -> 'a) -> 'a

(** Accumulate one kernel run into the (kind, instance) bucket. *)
val record_kernel :
  kind:string ->
  instance:string ->
  flops:float ->
  bytes:float ->
  seconds:float ->
  unit

val kernel_stats : unit -> kernel_stat list
val gflops : kernel_stat -> float
val arithmetic_intensity : kernel_stat -> float

val record_prediction :
  name:string -> predicted_gflops:float -> measured_gflops:float -> unit

val predictions : unit -> prediction list

(** Signed relative model error; positive = model over-predicts. *)
val deviation : prediction -> float

val mean_abs_deviation : prediction list -> float

(** Well-known counter names written by the PARLOOPER runtime. *)
val jit_hits_name : string

val jit_misses_name : string
val jit_evictions_name : string
val jit_compile_ns_name : string
val barrier_wait_ns_name : string

(** Clear kernel stats, predictions, spans and zero all counters and
    histograms. *)
val reset : unit -> unit

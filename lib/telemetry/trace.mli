(** Request-scoped causal tracing over the flight recorder.

    Serving-layer seams emit {!Recorder} events of the [Trace_*] class
    with the request's trace id in operand [a]; this module holds the
    off-hot-path pieces: the tail-based sampling policy (retain a full
    timeline only for requests that breached an SLO, hit a fault site,
    were shed or migrated, plus a seeded 1-in-N baseline), exemplars
    linking TTFT/TPOT histogram buckets to a retained trace id, and the
    assembler that stitches per-thread rings into per-request causal
    timelines (text + Chrome, one process lane per replica). *)

(** Exemplar metric keys used by the serving layer. *)
val metric_ttft : string

val metric_tpot : string

val is_trace_kind : Recorder.kind -> bool

(** {1 Lane labels}

    Interned recorder labels. [replica_label i] is ["replica:<i>"] — the
    convention {!Recorder.trace_of_events} renders as a per-replica
    Chrome process lane. *)

val replica_label : int -> int

val solo_label : int
val router_label : int

(** {1 Tail-based sampling} *)

(** Retain 1 in [n] non-breaching requests as a baseline sample
    (default 16; 0 disables the baseline entirely). *)
val set_baseline : int -> unit

(** Seed for the deterministic baseline draw. *)
val set_seed : int -> unit

(** The seeded 1-in-N decision for a trace id (pure; same answer every
    call). *)
val baseline_hit : int -> bool

(** Force-retain a trace (SLO breach, fault, shed, migration). The first
    reason recorded for an id wins. *)
val retain : id:int -> reason:string -> unit

val is_retained : int -> bool
val retention_reason : int -> string option

(** Retained [(id, reason)] pairs, sorted by id. *)
val retained : unit -> (int * string) list

(** Emit the [Trace_end] event for a request and apply the retention
    policy: an explicit [reason] always retains, otherwise only the
    baseline draw does. [state] uses {!state_name}'s code vocabulary
    (= [Serve.Request.state_code]). *)
val terminal :
  id:int -> label:int -> state:int -> ?reason:string -> unit -> unit

(** Human name for a terminal state code (0=queued … 6=failed). *)
val state_name : int -> string

(** {1 Exemplars} *)

(** Nominate [id] as the exemplar for the log-bucket [value_ms] lands
    in; the largest value per bucket wins. *)
val exemplar : metric:string -> value_ms:float -> id:int -> unit

(** All exemplars for a metric, worst (largest value) first. *)
val exemplars : metric:string -> (float * int) list

(** Every metric's exemplars, sorted by metric name. *)
val all_exemplars : unit -> (string * (float * int) list) list

(** Worst retained trace for a metric: [(id, value_ms)] of the largest
    exemplar whose id survived tail sampling. *)
val worst : metric:string -> (int * float) option

(** {1 Assembler} *)

(** Trace ids with at least one ring event, sorted. *)
val ids : unit -> int list

(** Time-ordered trace events for one id (empty if evicted/unknown). *)
val timeline : int -> Recorder.event list

(** Number of decode iterations (greedy + speculative) in a timeline. *)
val decode_spans : Recorder.event list -> int

val text_of_timeline : ?reason:string -> int -> string

(** Chrome trace for one request, per-replica lanes included. Output
    passes {!Json_check.validate}. *)
val chrome_of_timeline : int -> string

(** Span-tree conservation: opens with [Trace_queued], exactly one
    [Trace_end] and it is last, decodes only after a prefill or resume,
    resumes never exceed detaches, and a finished request has every
    detach matched by a resume. *)
val check_events : Recorder.event list -> (unit, string) result

val check : int -> (unit, string) result

(** Write every retained trace under [dir] (trace-<id>.txt +
    trace-<id>.trace.json, validated) plus index.txt and exemplars.txt
    for the CLI; returns the number of traces written. *)
val dump : dir:string -> int

(** Drop retention decisions and exemplars (ring events are the
    {!Recorder}'s to keep or drop). *)
val reset : unit -> unit

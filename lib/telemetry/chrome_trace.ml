(* Chrome trace_event export: every recorded span becomes a complete ("X")
   event on its thread's track, so chrome://tracing / Perfetto renders the
   per-thread, per-loop-level timeline of a run. Timestamps are rebased to
   the earliest span and expressed in microseconds, per the format spec. *)

let thread_sort_key tid = if tid < 0 then -1 else tid

let thread_label tid =
  if tid < 0 then "main" else Printf.sprintf "worker-%d" tid

let to_string () =
  let spans = Span.all () in
  let base =
    match spans with [] -> 0L | s :: _ -> s.Span.start_ns
  in
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else pr ","
  in
  sep ();
  pr
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
     \"args\":{\"name\":\"parlooper\"}}";
  (* one metadata event per distinct thread track *)
  List.iter
    (fun (tid, _) ->
      sep ();
      pr
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
         \"args\":{\"name\":\"%s\"}}"
        tid
        (Report.json_escape (thread_label tid));
      sep ();
      pr
        "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
         \"args\":{\"sort_index\":%d}}"
        tid (thread_sort_key tid))
    (Span.by_tid ());
  List.iter
    (fun (s : Span.t) ->
      sep ();
      pr
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\
         \"ts\":%.3f,\"dur\":%.3f"
        (Report.json_escape s.Span.name)
        (Report.json_escape s.Span.cat)
        s.Span.tid
        (Clock.us_of_ns (Int64.sub s.Span.start_ns base))
        (Clock.us_of_ns s.Span.dur_ns);
      (match s.Span.args with
      | [] -> ()
      | args ->
        pr ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then pr ",";
            pr "\"%s\":%s" (Report.json_escape k) (Report.json_float v))
          args;
        pr "}");
      pr "}")
    spans;
  pr "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ()))

(** Log-bucketed value histograms with quantile queries — the latency
    aggregation primitive behind the serving-layer TTFT / per-token
    percentiles. Like {!Counter}, histograms are interned by name so any
    domain or systhread observes into the same instance; all operations
    are thread-safe, so per-domain observations merge automatically.
    Buckets are geometrically spaced (~9% relative resolution) — quantiles
    are exact to one bucket width. *)

type t

(** Same name, same histogram (interned). *)
val find_or_create : string -> t

val name : t -> string

(** Record one observation (any positive value; unit is the caller's —
    pick one per histogram, e.g. milliseconds). *)
val observe : t -> float -> unit

val count : t -> int
val sum : t -> float

(** [nan] while empty. *)
val mean : t -> float

val min_value : t -> float
val max_value : t -> float

(** [quantile h q] for q in [0, 1] — nearest-rank over the bucketed
    distribution, within one bucket width (~9%) of exact; [nan] while
    empty. *)
val quantile : t -> float -> float

(** Non-empty buckets as [(upper_bound, count)] pairs, ascending by
    bound — the raw material for Prometheus histogram exposition. *)
val buckets : t -> (float * int) list

(** Fold [src]'s buckets into [into] (e.g. merging per-domain shards). *)
val merge_into : t -> into:t -> unit

(** All histograms, sorted by name. *)
val all : unit -> t list

(** Zero counts but keep identity (callers may cache the handle). *)
val reset : t -> unit

val reset_all : unit -> unit

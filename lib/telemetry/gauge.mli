(** Named atomic gauges: point-in-time levels (queue depth, buffer
    occupancy, high-water marks), as opposed to the monotonically
    increasing {!Counter}. Gauges are interned — [find_or_create name]
    always returns the same gauge for the same name — and appear in
    {!Report} and {!Expose} under their own metric type. *)

type t

val find_or_create : string -> t
val name : t -> string

(** [set] is the primary gauge operation: overwrite the level. *)
val set : t -> int -> unit

(** Relative adjustment (e.g. +1 on acquire, -1 on release). *)
val add : t -> int -> unit

val incr : t -> unit
val decr : t -> unit
val get : t -> int

(** Value by name; 0 if the gauge was never created. *)
val value : string -> int

(** All gauges as [(name, value)], sorted by name. *)
val all : unit -> (string * int) list

val reset_all : unit -> unit

(* Minimal dependency-free JSON well-formedness checker (RFC 8259 grammar,
   no value construction). The telemetry reports, Chrome traces and bench
   JSON files are emitted by hand-written printers; this validates them in
   tests and right after writing, so a malformed escape or a trailing comma
   fails the producing run instead of a downstream consumer. *)

exception Bad_json of string

let validate (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ()
        | Some '}' -> incr pos
        | _ -> fail "object"
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          elems ()
        | Some ']' -> incr pos
        | _ -> fail "array"
      in
      elems ()
    end
  and string_lit () =
    expect '"';
    let rec chars () =
      match peek () with
      | Some '"' -> incr pos
      | Some '\\' ->
        incr pos;
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> incr pos
        | Some 'u' ->
          incr pos;
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> incr pos
            | _ -> fail "unicode escape"
          done
        | _ -> fail "escape");
        chars ()
      | Some c when Char.code c >= 0x20 ->
        incr pos;
        chars ()
      | _ -> fail "string"
    in
    chars ()
  and keyword () =
    let ok kw =
      let l = String.length kw in
      if !pos + l <= n && String.sub s !pos l = kw then (
        pos := !pos + l;
        true)
      else false
    in
    if not (ok "true" || ok "false" || ok "null") then fail "keyword"
  and number () =
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let start = !pos in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "number"
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let check s = match validate s with () -> Ok () | exception Bad_json m -> Error m

(* ---- emission helpers --------------------------------------------------
   These live here (not in Report) so low-level emitters — Recorder,
   Expose — can produce strings this module accepts without pulling in the
   whole report layer. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON floats: no nan/inf, no exponent surprises for consumers *)
let float_repr f =
  if Float.is_nan f || (Float.is_integer f && Float.abs f < 1e15) then
    Printf.sprintf "%.0f" (if Float.is_nan f then 0.0 else f)
  else if Float.is_finite f then Printf.sprintf "%.6g" f
  else "0"

/* Monotonic clock for the telemetry subsystem.

   CLOCK_MONOTONIC is immune to NTP slews and wall-clock jumps, unlike
   Unix.gettimeofday; the native entry point is [@@noalloc]/[@unboxed] so a
   timestamp read is a plain C call with no OCaml allocation. */

#include <stdint.h>
#include <time.h>

#include <caml/alloc.h>
#include <caml/mlvalues.h>

int64_t tl_monotonic_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value tl_monotonic_now_ns_byte(value unit)
{
  return caml_copy_int64(tl_monotonic_now_ns(unit));
}

/* Tagged-int variant for the flight recorder's hot path: a 63-bit OCaml
   int holds ~146 years of nanoseconds, and returning Val_long avoids the
   Int64 box the unboxed external would still allocate through opaque
   call boundaries on non-flambda builds. */
CAMLprim value tl_monotonic_now_int_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}

(* Monotonic time base for every timed region in the repo. All other
   telemetry modules (and the harness/tuner timing paths) read this clock,
   never Unix.gettimeofday, so measurements cannot go backwards under
   wall-clock adjustment. *)

external now_ns : unit -> (int64[@unboxed])
  = "tl_monotonic_now_ns_byte" "tl_monotonic_now_ns"
[@@noalloc]

(* tagged-int nanoseconds (~146 years of range): the flight recorder's
   timestamp, guaranteed allocation-free even without flambda *)
external now_int_ns : unit -> int = "tl_monotonic_now_int_ns" [@@noalloc]

let s_of_ns ns = Int64.to_float ns *. 1e-9
let us_of_ns ns = Int64.to_float ns *. 1e-3
let now_s () = s_of_ns (now_ns ())
let elapsed_ns ~since = Int64.sub (now_ns ()) since
let elapsed_s ~since = s_of_ns (elapsed_ns ~since)

(* time a thunk: (result, seconds) *)
let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, elapsed_s ~since:t0)

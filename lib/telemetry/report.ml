(* End-of-run summaries of everything the registry collected: per-kernel
   achieved GFLOPS with optional roofline context, JIT-cache behaviour,
   barrier-wait totals, raw counters and perf-model error — as plain text
   for terminals and as JSON for scripts. *)

(* emission helpers live in Json_check (shared with Recorder/Expose);
   re-exported here for existing callers *)
let json_escape = Json_check.escape
let json_float = Json_check.float_repr

(* attainable GFLOPS at a kernel's arithmetic intensity, classic roofline *)
let roofline ~peak_gflops ~mem_bw_gbs ai =
  Float.min peak_gflops (mem_bw_gbs *. ai)

let summary ?peak_gflops ?mem_bw_gbs () =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "== telemetry report ==\n";
  (* kernels *)
  let ks = Registry.kernel_stats () in
  if ks <> [] then begin
    pr "kernels (achieved):\n";
    List.iter
      (fun (s : Registry.kernel_stat) ->
        let g = Registry.gflops s in
        let ai = Registry.arithmetic_intensity s in
        pr "  %-6s %-34s %4d run%s %9.4fs %10.2f GFLOPS" s.Registry.kind
          s.Registry.instance s.Registry.invocations
          (if s.Registry.invocations = 1 then " " else "s")
          s.Registry.seconds g;
        if ai > 0.0 then pr "  AI %.1f F/B" ai;
        (match (peak_gflops, mem_bw_gbs) with
        | Some peak, Some bw when ai > 0.0 && peak > 0.0 ->
          let roof = roofline ~peak_gflops:peak ~mem_bw_gbs:bw ai in
          pr "  (%.1f%% of %.0f GF roofline)" (100.0 *. g /. roof) roof
        | Some peak, _ when peak > 0.0 ->
          pr "  (%.1f%% of %.0f GF peak)" (100.0 *. g /. peak) peak
        | _ -> ());
        pr "\n")
      ks
  end;
  (* JIT cache *)
  let hits = Counter.value Registry.jit_hits_name in
  let misses = Counter.value Registry.jit_misses_name in
  if hits + misses > 0 then
    pr
      "jit cache: %d hits, %d misses (%.1f%% hit rate), %d evictions, \
       %.2f ms compiling\n"
      hits misses
      (100.0 *. float_of_int hits /. float_of_int (hits + misses))
      (Counter.value Registry.jit_evictions_name)
      (float_of_int (Counter.value Registry.jit_compile_ns_name) /. 1e6);
  let wait = Counter.value Registry.barrier_wait_ns_name in
  if wait > 0 then
    pr "barrier wait: %.3f ms total across threads\n"
      (float_of_int wait /. 1e6);
  (* predicted vs measured *)
  let ps = Registry.predictions () in
  if ps <> [] then begin
    pr "perf model, predicted vs measured:\n";
    List.iter
      (fun (p : Registry.prediction) ->
        pr "  %-34s predicted %10.2f GF  measured %10.2f GF  deviation %+.1f%%\n"
          p.Registry.pname p.Registry.predicted_gflops p.Registry.measured_gflops
          (100.0 *. Registry.deviation p))
      ps;
    pr "  mean |deviation|: %.1f%% over %d candidate%s\n"
      (100.0 *. Registry.mean_abs_deviation ps)
      (List.length ps)
      (if List.length ps = 1 then "" else "s")
  end;
  (* histograms (latency distributions etc.) *)
  let hs = List.filter (fun h -> Histogram.count h > 0) (Histogram.all ()) in
  if hs <> [] then begin
    pr "histograms:\n";
    List.iter
      (fun h ->
        pr
          "  %-28s %6d obs  mean %10.3f  p50 %10.3f  p95 %10.3f  \
           p99 %10.3f  max %10.3f\n"
          (Histogram.name h) (Histogram.count h) (Histogram.mean h)
          (Histogram.quantile h 0.50)
          (Histogram.quantile h 0.95)
          (Histogram.quantile h 0.99)
          (Histogram.max_value h))
      hs
  end;
  (* remaining counters *)
  let skip =
    [
      Registry.jit_hits_name; Registry.jit_misses_name;
      Registry.jit_evictions_name; Registry.jit_compile_ns_name;
      Registry.barrier_wait_ns_name;
    ]
  in
  let rest =
    List.filter (fun (n, v) -> v <> 0 && not (List.mem n skip)) (Counter.all ())
  in
  if rest <> [] then begin
    pr "counters:\n";
    List.iter (fun (n, v) -> pr "  %-40s %d\n" n v) rest
  end;
  let gs = List.filter (fun (_, v) -> v <> 0) (Gauge.all ()) in
  if gs <> [] then begin
    pr "gauges:\n";
    List.iter (fun (n, v) -> pr "  %-40s %d\n" n v) gs
  end;
  pr "spans: %d recorded on %d thread track%s\n" (Span.count ())
    (List.length (Span.by_tid ()))
    (if List.length (Span.by_tid ()) = 1 then "" else "s");
  Buffer.contents b

let print ?peak_gflops ?mem_bw_gbs () =
  print_string (summary ?peak_gflops ?mem_bw_gbs ());
  flush stdout

let to_json ?peak_gflops ?mem_bw_gbs () =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "{";
  (match peak_gflops with
  | Some p -> pr "\"peak_gflops\":%s," (json_float p)
  | None -> ());
  (match mem_bw_gbs with
  | Some bw -> pr "\"mem_bw_gbs\":%s," (json_float bw)
  | None -> ());
  pr "\"kernels\":[";
  List.iteri
    (fun i (s : Registry.kernel_stat) ->
      if i > 0 then pr ",";
      pr
        "{\"kind\":\"%s\",\"instance\":\"%s\",\"invocations\":%d,\
         \"flops\":%s,\"bytes\":%s,\"seconds\":%s,\"gflops\":%s,\
         \"arithmetic_intensity\":%s}"
        (json_escape s.Registry.kind)
        (json_escape s.Registry.instance)
        s.Registry.invocations (json_float s.Registry.flops)
        (json_float s.Registry.bytes)
        (json_float s.Registry.seconds)
        (json_float (Registry.gflops s))
        (json_float (Registry.arithmetic_intensity s)))
    (Registry.kernel_stats ());
  pr "],\"predictions\":[";
  List.iteri
    (fun i (p : Registry.prediction) ->
      if i > 0 then pr ",";
      pr
        "{\"name\":\"%s\",\"predicted_gflops\":%s,\"measured_gflops\":%s,\
         \"deviation\":%s}"
        (json_escape p.Registry.pname)
        (json_float p.Registry.predicted_gflops)
        (json_float p.Registry.measured_gflops)
        (json_float (Registry.deviation p)))
    (Registry.predictions ());
  pr "],\"histograms\":[";
  List.iteri
    (fun i h ->
      if i > 0 then pr ",";
      pr
        "{\"name\":\"%s\",\"count\":%d,\"sum\":%s,\"mean\":%s,\"min\":%s,\
         \"max\":%s,\"p50\":%s,\"p90\":%s,\"p95\":%s,\"p99\":%s}"
        (json_escape (Histogram.name h))
        (Histogram.count h)
        (json_float (Histogram.sum h))
        (json_float (Histogram.mean h))
        (json_float (Histogram.min_value h))
        (json_float (Histogram.max_value h))
        (json_float (Histogram.quantile h 0.50))
        (json_float (Histogram.quantile h 0.90))
        (json_float (Histogram.quantile h 0.95))
        (json_float (Histogram.quantile h 0.99)))
    (List.filter (fun h -> Histogram.count h > 0) (Histogram.all ()));
  pr "],\"counters\":{";
  List.iteri
    (fun i (n, v) ->
      if i > 0 then pr ",";
      pr "\"%s\":%d" (json_escape n) v)
    (Counter.all ());
  pr "},\"gauges\":{";
  List.iteri
    (fun i (n, v) ->
      if i > 0 then pr ",";
      pr "\"%s\":%d" (json_escape n) v)
    (Gauge.all ());
  pr "},\"spans\":%d}" (Span.count ());
  Buffer.contents b

(** Named atomic counters, shared across domains and systhreads. Counters
    are interned: [find_or_create name] always returns the same counter for
    the same name, so callers may cache it and increment lock-free.
    Resetting zeroes values but preserves identities. *)

type t

val find_or_create : string -> t
val name : t -> string
val incr : t -> unit
val add : t -> int -> unit
val get : t -> int
val set : t -> int -> unit

(** Value by name; 0 if the counter was never created. *)
val value : string -> int

(** All counters as [(name, value)], sorted by name. *)
val all : unit -> (string * int) list

val reset_all : unit -> unit

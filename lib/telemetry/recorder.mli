(** Always-on flight recorder: fixed-size per-thread ring buffers of
    compact binary event records, written lock-free with zero
    steady-state allocation, snapshotted into post-mortem dumps (text
    timeline + Chrome trace_event JSON) when a hardened failure path
    fires.

    Recording is on by default; disable with [PARLOOPER_RECORDER=0] or
    {!set_enabled}. Dumps are written only when a dump directory is
    configured ([PARLOOPER_DUMP_DIR] or {!set_dump_dir}), so test runs
    that intentionally trip failure paths stay quiet. *)

(** Event vocabulary — one constructor per instrumented seam. *)
type kind =
  | Kernel_begin  (** BRGEMM batch entry; [label]=kernel config, [a]=batch *)
  | Kernel_end  (** matching exit (also on the exception path) *)
  | Pool_dispatch  (** Team pool run; [a]=team width *)
  | Barrier_arrive  (** barrier arrival; [a]=tid, [b]=arrival rank *)
  | Sched_admit  (** scheduler admitted a request; [a]=req id, [b]=queue *)
  | Sched_decode  (** scheduler decode round; [a]=batch, [b]=tokens *)
  | Kv_acquire  (** KV cache leased; [a]=rows, [b]=in_use *)
  | Kv_release  (** KV cache returned; [a]=rows, [b]=in_use *)
  | Kv_deny  (** KV lease refused; [a]=rows requested *)
  | Fault_fired  (** injected fault; [label]=site, [a]=invocation, [b]=kind *)
  | Jit_compile  (** JIT cache miss compiled; [label]=spec, [a]=ns *)
  | Mark  (** free-form point event *)
  | Trace_queued  (** request entered a queue; [a]=trace id, [b]=depth *)
  | Trace_routed  (** placement decision; [a]=trace id, [b]=replica *)
  | Trace_prefill  (** prefill finished; [a]=trace id, [b]=prompt rows *)
  | Trace_handoff  (** KV handoff push; [a]=trace id, [b]=channel depth *)
  | Trace_decode  (** one decode iteration; [a]=trace id, [b]=batch width *)
  | Trace_spec  (** speculative verify round; [a]=trace id, [b]=accepted *)
  | Trace_kv  (** KV lease for a request; [a]=trace id, [b]=rows, -1=denied *)
  | Trace_retry  (** retry-with-rewind; [a]=trace id, [b]=attempt *)
  | Trace_shed  (** load-shed requeue; [a]=trace id, [b]=eff batch *)
  | Trace_detach  (** migration export; [a]=trace id, [b]=tokens emitted *)
  | Trace_import  (** migration KV import; [a]=trace id, [b]=rows *)
  | Trace_resume  (** migration commit; [a]=trace id, [b]=dest replica *)
  | Trace_end  (** terminal transition; [a]=trace id, [b]=state code *)

val kind_name : kind -> string

(** Chrome-trace category for a kind ("kernel", "pool", "barrier",
    "sched", "kv", "fault", "jit", "mark", "trace"). *)
val kind_cat : kind -> string

val set_enabled : bool -> unit
val enabled : unit -> bool

(** Intern a label string to the int the hot path carries. Call once at
    site/kernel creation, never per event. *)
val intern : string -> int

(** The interned empty label, for events that don't need one. *)
val no_label : int

val label_name : int -> string

(** Append one event to the calling thread's ring. Allocation-free and
    lock-free after the thread's first event; a no-op while disabled.
    [Trace_*] kinds land in a separate per-thread lane of the same
    capacity, so sparse causal-trace events are never evicted by dense
    kernel/scheduler spans wrapping the main lane. *)
val emit : kind -> label:int -> a:int -> b:int -> unit

(** [mark ~label] = [emit Mark ~label ~a:0 ~b:0]. *)
val mark : label:int -> unit

(** Ring capacity (events per thread) for rings created after the call;
    default 4096. *)
val set_capacity : int -> unit

(** Events discarded because the ring registry was full. *)
val events_lost : unit -> int

(** A decoded event, as seen by snapshots. *)
type event = {
  tid : int;  (** OS thread id (Thread.id) *)
  seq : int;  (** position in the owning thread's event stream *)
  t_ns : int;  (** {!Clock.now_int_ns} timestamp *)
  ekind : kind;
  label : string;
  a : int;
  b : int;
}

(** Best-effort merged snapshot of every ring, sorted by time. Races
    benignly with concurrent writers. *)
val events : unit -> event list

(** Thread ids that have recorded at least one event, sorted. *)
val tids : unit -> int list

(** Human-readable timeline (relative-microsecond columns). *)
val text_of_events : ?reason:string -> event list -> string

(** Parse the replica lane convention: labels of the form
    ["replica:<i>"] place an event in replica [i]'s Chrome process lane.
    [None] for any other label. *)
val lane_of_label : string -> int option

(** Chrome trace_event JSON ({v {"traceEvents":[...]} v}): B/E pairs for
    kernel begin/end, instant events for everything else, thread-name
    metadata per tid. Events carrying a ["replica:<i>"] label render in
    a per-replica process lane (pid [i+2], named "replica i"); everything
    else stays in pid 1. Output always passes {!Json_check.validate}. *)
val trace_of_events : ?reason:string -> event list -> string

(** Where post-mortem dumps go; [None] (the default, unless
    [PARLOOPER_DUMP_DIR] is set) disables dumping. *)
val set_dump_dir : string option -> unit

val dump_dir : unit -> string option

(** Cap on dumps per process (default 8), so a failure storm can't fill
    the disk. *)
val set_max_dumps : int -> unit

val dumps_written : unit -> int

(** Snapshot all rings into [<dir>/flight-NNN.txt] and
    [<dir>/flight-NNN.trace.json], validate the trace, announce on
    stderr, and return the common path prefix. [None] when no dump dir
    is configured, the budget is spent, or there are no events. Called
    by the hardened failure paths; safe to call manually. *)
val post_mortem : reason:string -> string option

(** Drop all rings and reset the dump budget (labels stay interned). *)
val reset : unit -> unit

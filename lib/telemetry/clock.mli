(** Monotonic clock (CLOCK_MONOTONIC via a C stub) — the single time base
    for all timed regions in the repo. Immune to wall-clock adjustment,
    allocation-free on the native-code path. *)

(** Nanoseconds from an arbitrary (but fixed) origin; strictly
    non-decreasing. *)
external now_ns : unit -> (int64[@unboxed])
  = "tl_monotonic_now_ns_byte" "tl_monotonic_now_ns"
[@@noalloc]

(** Same clock as a tagged OCaml int (≈146 years of nanosecond range).
    Strictly allocation-free on every build mode — this is the timestamp
    the flight recorder writes on its hot path. *)
external now_int_ns : unit -> int = "tl_monotonic_now_int_ns" [@@noalloc]

val now_s : unit -> float
val s_of_ns : int64 -> float
val us_of_ns : int64 -> float
val elapsed_ns : since:int64 -> int64
val elapsed_s : since:int64 -> float

(** [time f] runs [f] and returns [(f (), seconds_elapsed)]. *)
val time : (unit -> 'a) -> 'a * float

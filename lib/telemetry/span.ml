(* Scoped timers. A span is one closed [start, start+dur) interval on one
   logical thread's timeline; the collection of spans is what Chrome_trace
   renders. The master switch lives here so the disabled path costs a single
   immediate bool load — hot callers (Nest.exec, kernel run functions) check
   [enabled] once per run, not per iteration. *)

type t = {
  name : string;
  cat : string;
  tid : int;  (** logical thread; -1 = orchestrating (main) thread *)
  start_ns : int64;
  dur_ns : int64;
  args : (string * float) list;  (** numeric annotations, e.g. wait time *)
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* Span volume is O(threads) per kernel run, so one mutex-protected list is
   contention-free in practice; swap for per-tid buffers if tracing ever
   moves inside the iteration body. *)
let lock = Mutex.create ()
let spans : t list ref = ref []
let recorded = ref 0

(* Bounded store: a multi-hour serve run with tracing left on must not
   leak one list cell per span forever. Past the cap, spans are counted
   into [dropped_name] and discarded; the cap is generous enough that any
   bench/test run keeps everything. The counter-name literal lives here
   (Registry re-exports it) because Registry already depends on Span. *)
let dropped_name = "telemetry.spans.dropped"
let limit_ref = ref 65_536
let set_limit n = limit_ref := max 1 n
let limit () = !limit_ref
let dropped_c = lazy (Counter.find_or_create dropped_name)

let record ?(args = []) ?(cat = "default") ?(tid = -1) ~name ~start_ns ~dur_ns
    () =
  if !enabled_flag then begin
    Mutex.lock lock;
    if !recorded < !limit_ref then begin
      spans := { name; cat; tid; start_ns; dur_ns; args } :: !spans;
      incr recorded;
      Mutex.unlock lock
    end
    else begin
      Mutex.unlock lock;
      Counter.incr (Lazy.force dropped_c)
    end
  end

(* scoped wrapper: times [f] and records on the way out, even on raise *)
let with_span ?(args = []) ?(cat = "default") ?(tid = -1) name f =
  if not !enabled_flag then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        record ~args ~cat ~tid ~name ~start_ns:t0
          ~dur_ns:(Int64.sub (Clock.now_ns ()) t0)
          ())
      f
  end

let all () =
  Mutex.lock lock;
  let l = !spans in
  Mutex.unlock lock;
  List.sort (fun a b -> compare a.start_ns b.start_ns) l

let count () =
  Mutex.lock lock;
  let n = !recorded in
  Mutex.unlock lock;
  n

(* spans-per-tid histogram, sorted by tid *)
let by_tid () =
  let h = Hashtbl.create 8 in
  List.iter
    (fun s ->
      Hashtbl.replace h s.tid
        (1 + Option.value ~default:0 (Hashtbl.find_opt h s.tid)))
    (all ());
  Hashtbl.fold (fun tid n acc -> (tid, n) :: acc) h [] |> List.sort compare

let reset () =
  Mutex.lock lock;
  spans := [];
  recorded := 0;
  Mutex.unlock lock

(** Live metrics plane: interval snapshots of the counter and gauge
    stores, per-counter deltas/rates between snapshots, and two
    renderings — one JSON object per line (the [Serve.Driver]
    live-metrics stream) and Prometheus text exposition. *)

type snapshot = {
  at_s : float;  (** {!Clock.now_s} at capture *)
  counters : (string * int) list;
  gauges : (string * int) list;
}

val take : unit -> snapshot

(** Per-counter increase from [prev] to [snap]; counters that did not
    exist in [prev] count from zero. *)
val deltas : prev:snapshot -> snapshot -> (string * int) list

(** One JSON line (no trailing newline): [at_s], [counters], [gauges],
    and — when [prev] is given — [interval_s], [deltas] and per-second
    [rates]. Always valid JSON per {!Json_check}. *)
val jsonl : ?prev:snapshot -> snapshot -> string

(** Escape a string for use as a Prometheus label value: backslash,
    double-quote and newline get backslash escapes, everything else
    passes through verbatim. *)
val escape_label : string -> string

(** Prometheus text exposition of all counters (TYPE counter), gauges
    (TYPE gauge) and non-empty histograms (TYPE histogram with
    cumulative [_bucket{le="…"}] series plus [_sum]/[_count]), followed
    by one [parlooper_trace_exemplar{metric,trace_id}] gauge per latency
    metric with a retained worst trace (see {!Trace.worst}). Metric
    names are sanitized to the Prometheus charset (dots become
    underscores); label values go through {!escape_label}. Output always
    passes {!check}. *)
val prometheus : unit -> string

(** Json_check-style validator for Prometheus text exposition: every
    [# TYPE] line well-formed with a known type, every sample line
    well-formed (name charset, quoted+escaped label values, float
    value) and covered by a preceding [# TYPE] for its family
    (accounting for the [_bucket]/[_sum]/[_count] suffixes). *)
val check : string -> (unit, string) result

(** Live metrics plane: interval snapshots of the counter and gauge
    stores, per-counter deltas/rates between snapshots, and two
    renderings — one JSON object per line (the [Serve.Driver]
    live-metrics stream) and Prometheus text exposition. *)

type snapshot = {
  at_s : float;  (** {!Clock.now_s} at capture *)
  counters : (string * int) list;
  gauges : (string * int) list;
}

val take : unit -> snapshot

(** Per-counter increase from [prev] to [snap]; counters that did not
    exist in [prev] count from zero. *)
val deltas : prev:snapshot -> snapshot -> (string * int) list

(** One JSON line (no trailing newline): [at_s], [counters], [gauges],
    and — when [prev] is given — [interval_s], [deltas] and per-second
    [rates]. Always valid JSON per {!Json_check}. *)
val jsonl : ?prev:snapshot -> snapshot -> string

(** Prometheus text exposition of all counters (TYPE counter), gauges
    (TYPE gauge) and non-empty histograms (TYPE summary with quantile
    labels plus [_sum]/[_count]). Metric names are sanitized to the
    Prometheus charset (dots become underscores). *)
val prometheus : unit -> string

(* Always-on flight recorder.

   Every thread that passes an instrumented seam (kernel dispatch, pool
   dispatch, barrier arrival, scheduler iteration, KV-pool traffic, fault
   injection, JIT compile) appends a compact fixed-width event record to
   its own ring buffer. The write path is lock-free and allocation-free
   in steady state:

   - one ring per OS thread (keyed by [Thread.id]), found by scanning a
     small immutable array published through an [Atomic.t] — rings are
     appended under a mutex exactly once per thread lifetime, then every
     subsequent [emit] is a plain array scan plus five [Array.unsafe_set]s;
   - each ring is five parallel [int array]s (kind, timestamp, interned
     label, two free operands) plus a write cursor, so recording boxes
     nothing — timestamps come from {!Clock.now_int_ns} (tagged int, not
     Int64) and labels are interned to ints at site-creation time, off
     the hot path;
   - a ring is only ever written by its owning thread, so there is no
     write-side synchronization at all. Snapshot reads ([events],
     [post_mortem]) race benignly with writers: a torn record can at
     worst misreport the couple of events in flight, which is the
     accepted price of a recorder that costs ~tens of ns per event.

   When a hardened failure path fires (Team.Parallel_failure,
   Tpp_check.Numeric_error, a chaos invariant violation, a deadline
   cancellation storm), the runtime calls {!post_mortem}: if a dump
   directory is configured (PARLOOPER_DUMP_DIR or {!set_dump_dir}), the
   merged timeline is written as a text dump plus a Chrome trace_event
   JSON file (validated by {!Json_check} before it hits disk) and
   announced on stderr. Recording itself is on by default and disabled
   with PARLOOPER_RECORDER=0 (or {!set_enabled}). *)

type kind =
  | Kernel_begin
  | Kernel_end
  | Pool_dispatch
  | Barrier_arrive
  | Sched_admit
  | Sched_decode
  | Kv_acquire
  | Kv_release
  | Kv_deny
  | Fault_fired
  | Jit_compile
  | Mark
  | Trace_queued
  | Trace_routed
  | Trace_prefill
  | Trace_handoff
  | Trace_decode
  | Trace_spec
  | Trace_kv
  | Trace_retry
  | Trace_shed
  | Trace_detach
  | Trace_import
  | Trace_resume
  | Trace_end

let code = function
  | Kernel_begin -> 0
  | Kernel_end -> 1
  | Pool_dispatch -> 2
  | Barrier_arrive -> 3
  | Sched_admit -> 4
  | Sched_decode -> 5
  | Kv_acquire -> 6
  | Kv_release -> 7
  | Kv_deny -> 8
  | Fault_fired -> 9
  | Jit_compile -> 10
  | Mark -> 11
  | Trace_queued -> 12
  | Trace_routed -> 13
  | Trace_prefill -> 14
  | Trace_handoff -> 15
  | Trace_decode -> 16
  | Trace_spec -> 17
  | Trace_kv -> 18
  | Trace_retry -> 19
  | Trace_shed -> 20
  | Trace_detach -> 21
  | Trace_import -> 22
  | Trace_resume -> 23
  | Trace_end -> 24

(* trace kinds occupy a contiguous code range so the hot path can route
   them to the per-thread trace lane with one compare *)
let trace_code_base = 12

let kind_of_code = function
  | 0 -> Kernel_begin
  | 1 -> Kernel_end
  | 2 -> Pool_dispatch
  | 3 -> Barrier_arrive
  | 4 -> Sched_admit
  | 5 -> Sched_decode
  | 6 -> Kv_acquire
  | 7 -> Kv_release
  | 8 -> Kv_deny
  | 9 -> Fault_fired
  | 10 -> Jit_compile
  | 11 -> Mark
  | 12 -> Trace_queued
  | 13 -> Trace_routed
  | 14 -> Trace_prefill
  | 15 -> Trace_handoff
  | 16 -> Trace_decode
  | 17 -> Trace_spec
  | 18 -> Trace_kv
  | 19 -> Trace_retry
  | 20 -> Trace_shed
  | 21 -> Trace_detach
  | 22 -> Trace_import
  | 23 -> Trace_resume
  | 24 -> Trace_end
  | _ -> Mark

let kind_name = function
  | Kernel_begin -> "kernel_begin"
  | Kernel_end -> "kernel_end"
  | Pool_dispatch -> "pool_dispatch"
  | Barrier_arrive -> "barrier_arrive"
  | Sched_admit -> "sched_admit"
  | Sched_decode -> "sched_decode"
  | Kv_acquire -> "kv_acquire"
  | Kv_release -> "kv_release"
  | Kv_deny -> "kv_deny"
  | Fault_fired -> "fault_fired"
  | Jit_compile -> "jit_compile"
  | Mark -> "mark"
  | Trace_queued -> "trace_queued"
  | Trace_routed -> "trace_routed"
  | Trace_prefill -> "trace_prefill"
  | Trace_handoff -> "trace_handoff"
  | Trace_decode -> "trace_decode"
  | Trace_spec -> "trace_spec"
  | Trace_kv -> "trace_kv"
  | Trace_retry -> "trace_retry"
  | Trace_shed -> "trace_shed"
  | Trace_detach -> "trace_detach"
  | Trace_import -> "trace_import"
  | Trace_resume -> "trace_resume"
  | Trace_end -> "trace_end"

(* Chrome trace category; also what tests grep for ("cat":"fault") *)
let kind_cat = function
  | Kernel_begin | Kernel_end -> "kernel"
  | Pool_dispatch -> "pool"
  | Barrier_arrive -> "barrier"
  | Sched_admit | Sched_decode -> "sched"
  | Kv_acquire | Kv_release | Kv_deny -> "kv"
  | Fault_fired -> "fault"
  | Jit_compile -> "jit"
  | Mark -> "mark"
  | Trace_queued | Trace_routed | Trace_prefill | Trace_handoff | Trace_decode
  | Trace_spec | Trace_kv | Trace_retry | Trace_shed | Trace_detach
  | Trace_import | Trace_resume | Trace_end ->
    "trace"

(* ---- enable switch ----------------------------------------------------- *)

let enabled_flag =
  ref (match Sys.getenv_opt "PARLOOPER_RECORDER" with
      | Some "0" -> false
      | _ -> true)

let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* ---- label interning --------------------------------------------------- *)

let intern_lock = Mutex.create ()
let intern_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let intern_names = ref (Array.make 64 "")
let intern_count = ref 0

let intern s =
  Mutex.lock intern_lock;
  let id =
    match Hashtbl.find_opt intern_tbl s with
    | Some id -> id
    | None ->
      let id = !intern_count in
      if id >= Array.length !intern_names then begin
        let bigger = Array.make (2 * Array.length !intern_names) "" in
        Array.blit !intern_names 0 bigger 0 id;
        intern_names := bigger
      end;
      !intern_names.(id) <- s;
      Hashtbl.replace intern_tbl s id;
      incr intern_count;
      id
  in
  Mutex.unlock intern_lock;
  id

let no_label = intern ""

let label_name id =
  Mutex.lock intern_lock;
  let s = if id >= 0 && id < !intern_count then !intern_names.(id) else "?" in
  Mutex.unlock intern_lock;
  s

(* ---- per-thread rings -------------------------------------------------- *)

(* Each ring carries two lanes: a dense lane for kernel/pool/scheduler
   events and a trace lane for the causal request-trace kinds. Trace
   events are sparse (a few per request) but must survive a drive whose
   kernel spans wrap the dense lane thousands of times over — one
   circular buffer for both would evict every trace event long before a
   timeline could be read back. Routing is a single integer compare on
   the kind code, so the write path stays allocation-free. *)
type ring = {
  rtid : int;  (* Thread.id of the owning (sole writer) thread *)
  kinds : int array;
  times : int array;
  labels : int array;
  aa : int array;
  bb : int array;
  mutable pos : int;  (* next write index *)
  mutable total : int;  (* events ever written to this ring *)
  t_kinds : int array;  (* trace lane *)
  t_times : int array;
  t_labels : int array;
  t_aa : int array;
  t_bb : int array;
  mutable t_pos : int;
  mutable t_total : int;
}

let default_capacity = 4096
let capacity_ref = ref default_capacity
let set_capacity n = capacity_ref := max 16 n
let max_rings = 1024
let rings : ring array Atomic.t = Atomic.make [||]
let rings_lock = Mutex.create ()
let lost = Atomic.make 0
let events_lost () = Atomic.get lost

(* hot-path ring lookup: immediate-arg recursion, no closure, no ref *)
let rec scan arr n id i =
  if i >= n then raise_notrace Not_found
  else
    let r = Array.unsafe_get arr i in
    if r.rtid == id then r else scan arr n id (i + 1)

(* slow path, once per thread: append a fresh ring (allocates, takes the
   lock — both fine off the steady state) *)
let add_ring id =
  Mutex.lock rings_lock;
  let arr = Atomic.get rings in
  let r =
    match scan arr (Array.length arr) id 0 with
    | r -> r (* lost a benign race with ourselves via reset *)
    | exception Not_found ->
      let cap = !capacity_ref in
      let r =
        { rtid = id; kinds = Array.make cap 0; times = Array.make cap 0;
          labels = Array.make cap 0; aa = Array.make cap 0;
          bb = Array.make cap 0; pos = 0; total = 0;
          t_kinds = Array.make cap 0; t_times = Array.make cap 0;
          t_labels = Array.make cap 0; t_aa = Array.make cap 0;
          t_bb = Array.make cap 0; t_pos = 0; t_total = 0 }
      in
      let bigger = Array.make (Array.length arr + 1) r in
      Array.blit arr 0 bigger 0 (Array.length arr);
      Atomic.set rings bigger;
      r
  in
  Mutex.unlock rings_lock;
  r

let[@inline] write r c ~label ~a ~b =
  if c >= trace_code_base then begin
    let i = r.t_pos in
    Array.unsafe_set r.t_kinds i c;
    Array.unsafe_set r.t_times i (Clock.now_int_ns ());
    Array.unsafe_set r.t_labels i label;
    Array.unsafe_set r.t_aa i a;
    Array.unsafe_set r.t_bb i b;
    r.t_pos <- (if i + 1 = Array.length r.t_kinds then 0 else i + 1);
    r.t_total <- r.t_total + 1
  end
  else begin
    let i = r.pos in
    Array.unsafe_set r.kinds i c;
    Array.unsafe_set r.times i (Clock.now_int_ns ());
    Array.unsafe_set r.labels i label;
    Array.unsafe_set r.aa i a;
    Array.unsafe_set r.bb i b;
    r.pos <- (if i + 1 = Array.length r.kinds then 0 else i + 1);
    r.total <- r.total + 1
  end

let emit k ~label ~a ~b =
  if !enabled_flag then begin
    let id = Thread.id (Thread.self ()) in
    let arr = Atomic.get rings in
    match scan arr (Array.length arr) id 0 with
    | exception Not_found ->
      if Array.length arr >= max_rings then Atomic.incr lost
      else write (add_ring id) (code k) ~label ~a ~b
    | r -> write r (code k) ~label ~a ~b
  end

let mark ~label = emit Mark ~label ~a:0 ~b:0

(* ---- snapshots --------------------------------------------------------- *)

type event = {
  tid : int;
  seq : int;  (* position in the owning thread's event stream *)
  t_ns : int;
  ekind : kind;
  label : string;
  a : int;
  b : int;
}

(* trace-lane events sort after dense events on a timestamp tie within
   one thread: their seq is offset past any plausible dense count *)
let trace_seq_base = 0x40000000

let events () =
  let arr = Atomic.get rings in
  let acc = ref [] in
  let read_lane rtid kinds times labels aa bb ~pos ~total ~seq0 =
    let cap = Array.length kinds in
    let n = if total < cap then total else cap in
    let start = if total < cap then 0 else pos in
    let base_seq = seq0 + total - n in
    for j = 0 to n - 1 do
      let i = (start + j) mod cap in
      acc :=
        { tid = rtid; seq = base_seq + j; t_ns = times.(i);
          ekind = kind_of_code kinds.(i);
          label = label_name labels.(i); a = aa.(i); b = bb.(i) }
        :: !acc
    done
  in
  Array.iter
    (fun r ->
      read_lane r.rtid r.kinds r.times r.labels r.aa r.bb ~pos:r.pos
        ~total:r.total ~seq0:0;
      read_lane r.rtid r.t_kinds r.t_times r.t_labels r.t_aa r.t_bb
        ~pos:r.t_pos ~total:r.t_total ~seq0:trace_seq_base)
    arr;
  List.sort
    (fun e1 e2 -> compare (e1.t_ns, e1.tid, e1.seq) (e2.t_ns, e2.tid, e2.seq))
    !acc

let tids () =
  let arr = Atomic.get rings in
  Array.to_list arr
  |> List.filter_map (fun r ->
      if r.total > 0 || r.t_total > 0 then Some r.rtid else None)
  |> List.sort compare

(* ---- rendering --------------------------------------------------------- *)

let text_of_events ?(reason = "") evs =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "# parlooper flight recorder\n";
  if reason <> "" then pr "# reason: %s\n" reason;
  let ntids =
    List.sort_uniq compare (List.map (fun e -> e.tid) evs) |> List.length
  in
  pr "# %d event%s across %d thread%s\n"
    (List.length evs)
    (if List.length evs = 1 then "" else "s")
    ntids
    (if ntids = 1 then "" else "s");
  let t0 = match evs with [] -> 0 | e :: _ -> e.t_ns in
  pr "#  rel_us      tid    seq  kind            a          b  label\n";
  List.iter
    (fun e ->
      pr "%9.1f %8d %6d  %-14s %-10d %-10d %s\n"
        (float_of_int (e.t_ns - t0) /. 1e3)
        e.tid e.seq (kind_name e.ekind) e.a e.b e.label)
    evs;
  Buffer.contents b

(* Replica lane convention: events whose label is "replica:<i>" render
   into their own Chrome process lane (pid i+2; pid 1 is the process-wide
   lane), so multi-replica post-mortems read side by side instead of
   interleaved flat. *)
let lane_of_label l =
  let p = "replica:" in
  let pl = String.length p in
  if String.length l > pl && String.sub l 0 pl = p then
    int_of_string_opt (String.sub l pl (String.length l - pl))
  else None

let pid_of_event e =
  match lane_of_label e.label with Some i when i >= 0 -> i + 2 | _ -> 1

let trace_of_events ?(reason = "") evs =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "{\"traceEvents\":[";
  pr
    "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
     \"args\":{\"name\":\"parlooper flight recorder%s%s\"}}"
    (if reason = "" then "" else ": ")
    (Json_check.escape reason);
  let lanes =
    List.sort_uniq compare (List.filter_map (fun e -> lane_of_label e.label) evs)
  in
  List.iter
    (fun i ->
      pr
        ",{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"replica %d\"}}"
        (i + 2) i)
    lanes;
  List.iter
    (fun (p, t) ->
      pr
        ",{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"thread %d\"}}"
        p t t)
    (List.sort_uniq compare (List.map (fun e -> (pid_of_event e, e.tid)) evs));
  List.iter
    (fun e ->
      let ts = float_of_int e.t_ns /. 1e3 in
      let name = if e.label = "" then kind_name e.ekind else e.label in
      let pid = pid_of_event e in
      match e.ekind with
      | Kernel_begin ->
        pr
          ",{\"ph\":\"B\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"name\":\"%s\",\
           \"cat\":\"%s\",\"args\":{\"a\":%d,\"b\":%d}}"
          pid e.tid
          (Json_check.float_repr ts)
          (Json_check.escape name) (kind_cat e.ekind) e.a e.b
      | Kernel_end ->
        pr ",{\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"name\":\"%s\",\"cat\":\"%s\"}"
          pid e.tid
          (Json_check.float_repr ts)
          (Json_check.escape name) (kind_cat e.ekind)
      | _ ->
        pr
          ",{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"s\":\"t\",\
           \"name\":\"%s\",\"cat\":\"%s\",\"args\":{\"a\":%d,\"b\":%d}}"
          pid e.tid
          (Json_check.float_repr ts)
          (Json_check.escape name) (kind_cat e.ekind) e.a e.b)
    evs;
  pr "]}";
  Buffer.contents b

(* ---- post-mortem dumps ------------------------------------------------- *)

let dump_dir_ref = ref (Sys.getenv_opt "PARLOOPER_DUMP_DIR")
let set_dump_dir d = dump_dir_ref := d
let dump_dir () = !dump_dir_ref
let max_dumps_ref = ref 8
let set_max_dumps n = max_dumps_ref := max 0 n
let dump_lock = Mutex.create ()
let dump_seq = ref 0
let dumps_written () = !dump_seq

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc s)

(* Snapshot every ring into <dir>/flight-NNN.{txt,trace.json}. Returns the
   common path prefix, or [None] when no dump directory is configured, the
   dump budget is exhausted, or the recorder is disabled/empty. The trace
   JSON is validated before writing; the text dump carries the reason. *)
let post_mortem ~reason =
  match !dump_dir_ref with
  | None -> None
  | Some dir ->
    Mutex.lock dump_lock;
    let result =
      if !dump_seq >= !max_dumps_ref then None
      else begin
        let evs = events () in
        if evs = [] then None
        else begin
          incr dump_seq;
          let prefix = Filename.concat dir
              (Printf.sprintf "flight-%03d" !dump_seq)
          in
          match
            (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
            let trace = trace_of_events ~reason evs in
            Json_check.validate trace;
            write_file (prefix ^ ".txt") (text_of_events ~reason evs);
            write_file (prefix ^ ".trace.json") trace
          with
          | () ->
            Printf.eprintf
              "[parlooper] flight recorder: %s -> %s.{txt,trace.json}\n%!"
              reason prefix;
            Some prefix
          | exception e ->
            Printf.eprintf "[parlooper] flight recorder: dump failed (%s): %s\n%!"
              reason (Printexc.to_string e);
            None
        end
      end
    in
    Mutex.unlock dump_lock;
    result

(* ---- lifecycle --------------------------------------------------------- *)

let reset () =
  Mutex.lock rings_lock;
  Atomic.set rings [||];
  Atomic.set lost 0;
  Mutex.unlock rings_lock;
  Mutex.lock dump_lock;
  dump_seq := 0;
  Mutex.unlock dump_lock

(* Always-on flight recorder.

   Every thread that passes an instrumented seam (kernel dispatch, pool
   dispatch, barrier arrival, scheduler iteration, KV-pool traffic, fault
   injection, JIT compile) appends a compact fixed-width event record to
   its own ring buffer. The write path is lock-free and allocation-free
   in steady state:

   - one ring per OS thread (keyed by [Thread.id]), found by scanning a
     small immutable array published through an [Atomic.t] — rings are
     appended under a mutex exactly once per thread lifetime, then every
     subsequent [emit] is a plain array scan plus five [Array.unsafe_set]s;
   - each ring is five parallel [int array]s (kind, timestamp, interned
     label, two free operands) plus a write cursor, so recording boxes
     nothing — timestamps come from {!Clock.now_int_ns} (tagged int, not
     Int64) and labels are interned to ints at site-creation time, off
     the hot path;
   - a ring is only ever written by its owning thread, so there is no
     write-side synchronization at all. Snapshot reads ([events],
     [post_mortem]) race benignly with writers: a torn record can at
     worst misreport the couple of events in flight, which is the
     accepted price of a recorder that costs ~tens of ns per event.

   When a hardened failure path fires (Team.Parallel_failure,
   Tpp_check.Numeric_error, a chaos invariant violation, a deadline
   cancellation storm), the runtime calls {!post_mortem}: if a dump
   directory is configured (PARLOOPER_DUMP_DIR or {!set_dump_dir}), the
   merged timeline is written as a text dump plus a Chrome trace_event
   JSON file (validated by {!Json_check} before it hits disk) and
   announced on stderr. Recording itself is on by default and disabled
   with PARLOOPER_RECORDER=0 (or {!set_enabled}). *)

type kind =
  | Kernel_begin
  | Kernel_end
  | Pool_dispatch
  | Barrier_arrive
  | Sched_admit
  | Sched_decode
  | Kv_acquire
  | Kv_release
  | Kv_deny
  | Fault_fired
  | Jit_compile
  | Mark

let code = function
  | Kernel_begin -> 0
  | Kernel_end -> 1
  | Pool_dispatch -> 2
  | Barrier_arrive -> 3
  | Sched_admit -> 4
  | Sched_decode -> 5
  | Kv_acquire -> 6
  | Kv_release -> 7
  | Kv_deny -> 8
  | Fault_fired -> 9
  | Jit_compile -> 10
  | Mark -> 11

let kind_of_code = function
  | 0 -> Kernel_begin
  | 1 -> Kernel_end
  | 2 -> Pool_dispatch
  | 3 -> Barrier_arrive
  | 4 -> Sched_admit
  | 5 -> Sched_decode
  | 6 -> Kv_acquire
  | 7 -> Kv_release
  | 8 -> Kv_deny
  | 9 -> Fault_fired
  | 10 -> Jit_compile
  | _ -> Mark

let kind_name = function
  | Kernel_begin -> "kernel_begin"
  | Kernel_end -> "kernel_end"
  | Pool_dispatch -> "pool_dispatch"
  | Barrier_arrive -> "barrier_arrive"
  | Sched_admit -> "sched_admit"
  | Sched_decode -> "sched_decode"
  | Kv_acquire -> "kv_acquire"
  | Kv_release -> "kv_release"
  | Kv_deny -> "kv_deny"
  | Fault_fired -> "fault_fired"
  | Jit_compile -> "jit_compile"
  | Mark -> "mark"

(* Chrome trace category; also what tests grep for ("cat":"fault") *)
let kind_cat = function
  | Kernel_begin | Kernel_end -> "kernel"
  | Pool_dispatch -> "pool"
  | Barrier_arrive -> "barrier"
  | Sched_admit | Sched_decode -> "sched"
  | Kv_acquire | Kv_release | Kv_deny -> "kv"
  | Fault_fired -> "fault"
  | Jit_compile -> "jit"
  | Mark -> "mark"

(* ---- enable switch ----------------------------------------------------- *)

let enabled_flag =
  ref (match Sys.getenv_opt "PARLOOPER_RECORDER" with
      | Some "0" -> false
      | _ -> true)

let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* ---- label interning --------------------------------------------------- *)

let intern_lock = Mutex.create ()
let intern_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let intern_names = ref (Array.make 64 "")
let intern_count = ref 0

let intern s =
  Mutex.lock intern_lock;
  let id =
    match Hashtbl.find_opt intern_tbl s with
    | Some id -> id
    | None ->
      let id = !intern_count in
      if id >= Array.length !intern_names then begin
        let bigger = Array.make (2 * Array.length !intern_names) "" in
        Array.blit !intern_names 0 bigger 0 id;
        intern_names := bigger
      end;
      !intern_names.(id) <- s;
      Hashtbl.replace intern_tbl s id;
      incr intern_count;
      id
  in
  Mutex.unlock intern_lock;
  id

let no_label = intern ""

let label_name id =
  Mutex.lock intern_lock;
  let s = if id >= 0 && id < !intern_count then !intern_names.(id) else "?" in
  Mutex.unlock intern_lock;
  s

(* ---- per-thread rings -------------------------------------------------- *)

type ring = {
  rtid : int;  (* Thread.id of the owning (sole writer) thread *)
  kinds : int array;
  times : int array;
  labels : int array;
  aa : int array;
  bb : int array;
  mutable pos : int;  (* next write index *)
  mutable total : int;  (* events ever written to this ring *)
}

let default_capacity = 4096
let capacity_ref = ref default_capacity
let set_capacity n = capacity_ref := max 16 n
let max_rings = 1024
let rings : ring array Atomic.t = Atomic.make [||]
let rings_lock = Mutex.create ()
let lost = Atomic.make 0
let events_lost () = Atomic.get lost

(* hot-path ring lookup: immediate-arg recursion, no closure, no ref *)
let rec scan arr n id i =
  if i >= n then raise_notrace Not_found
  else
    let r = Array.unsafe_get arr i in
    if r.rtid == id then r else scan arr n id (i + 1)

(* slow path, once per thread: append a fresh ring (allocates, takes the
   lock — both fine off the steady state) *)
let add_ring id =
  Mutex.lock rings_lock;
  let arr = Atomic.get rings in
  let r =
    match scan arr (Array.length arr) id 0 with
    | r -> r (* lost a benign race with ourselves via reset *)
    | exception Not_found ->
      let cap = !capacity_ref in
      let r =
        { rtid = id; kinds = Array.make cap 0; times = Array.make cap 0;
          labels = Array.make cap 0; aa = Array.make cap 0;
          bb = Array.make cap 0; pos = 0; total = 0 }
      in
      let bigger = Array.make (Array.length arr + 1) r in
      Array.blit arr 0 bigger 0 (Array.length arr);
      Atomic.set rings bigger;
      r
  in
  Mutex.unlock rings_lock;
  r

let emit k ~label ~a ~b =
  if !enabled_flag then begin
    let id = Thread.id (Thread.self ()) in
    let arr = Atomic.get rings in
    match scan arr (Array.length arr) id 0 with
    | exception Not_found ->
      if Array.length arr >= max_rings then Atomic.incr lost
      else begin
        let r = add_ring id in
        let i = r.pos in
        Array.unsafe_set r.kinds i (code k);
        Array.unsafe_set r.times i (Clock.now_int_ns ());
        Array.unsafe_set r.labels i label;
        Array.unsafe_set r.aa i a;
        Array.unsafe_set r.bb i b;
        r.pos <- (if i + 1 = Array.length r.kinds then 0 else i + 1);
        r.total <- r.total + 1
      end
    | r ->
      let i = r.pos in
      Array.unsafe_set r.kinds i (code k);
      Array.unsafe_set r.times i (Clock.now_int_ns ());
      Array.unsafe_set r.labels i label;
      Array.unsafe_set r.aa i a;
      Array.unsafe_set r.bb i b;
      r.pos <- (if i + 1 = Array.length r.kinds then 0 else i + 1);
      r.total <- r.total + 1
  end

let mark ~label = emit Mark ~label ~a:0 ~b:0

(* ---- snapshots --------------------------------------------------------- *)

type event = {
  tid : int;
  seq : int;  (* position in the owning thread's event stream *)
  t_ns : int;
  ekind : kind;
  label : string;
  a : int;
  b : int;
}

let events () =
  let arr = Atomic.get rings in
  let acc = ref [] in
  Array.iter
    (fun r ->
      let cap = Array.length r.kinds in
      let total = r.total in
      let n = if total < cap then total else cap in
      let start = if total < cap then 0 else r.pos in
      let base_seq = total - n in
      for j = 0 to n - 1 do
        let i = (start + j) mod cap in
        acc :=
          { tid = r.rtid; seq = base_seq + j; t_ns = r.times.(i);
            ekind = kind_of_code r.kinds.(i);
            label = label_name r.labels.(i); a = r.aa.(i); b = r.bb.(i) }
          :: !acc
      done)
    arr;
  List.sort
    (fun e1 e2 -> compare (e1.t_ns, e1.tid, e1.seq) (e2.t_ns, e2.tid, e2.seq))
    !acc

let tids () =
  let arr = Atomic.get rings in
  Array.to_list arr
  |> List.filter_map (fun r -> if r.total > 0 then Some r.rtid else None)
  |> List.sort compare

(* ---- rendering --------------------------------------------------------- *)

let text_of_events ?(reason = "") evs =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "# parlooper flight recorder\n";
  if reason <> "" then pr "# reason: %s\n" reason;
  let ntids =
    List.sort_uniq compare (List.map (fun e -> e.tid) evs) |> List.length
  in
  pr "# %d event%s across %d thread%s\n"
    (List.length evs)
    (if List.length evs = 1 then "" else "s")
    ntids
    (if ntids = 1 then "" else "s");
  let t0 = match evs with [] -> 0 | e :: _ -> e.t_ns in
  pr "#  rel_us      tid    seq  kind            a          b  label\n";
  List.iter
    (fun e ->
      pr "%9.1f %8d %6d  %-14s %-10d %-10d %s\n"
        (float_of_int (e.t_ns - t0) /. 1e3)
        e.tid e.seq (kind_name e.ekind) e.a e.b e.label)
    evs;
  Buffer.contents b

let trace_of_events ?(reason = "") evs =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "{\"traceEvents\":[";
  pr
    "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
     \"args\":{\"name\":\"parlooper flight recorder%s%s\"}}"
    (if reason = "" then "" else ": ")
    (Json_check.escape reason);
  List.iter
    (fun t ->
      pr
        ",{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"thread %d\"}}"
        t t)
    (List.sort_uniq compare (List.map (fun e -> e.tid) evs));
  List.iter
    (fun e ->
      let ts = float_of_int e.t_ns /. 1e3 in
      let name = if e.label = "" then kind_name e.ekind else e.label in
      match e.ekind with
      | Kernel_begin ->
        pr
          ",{\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"name\":\"%s\",\
           \"cat\":\"%s\",\"args\":{\"a\":%d,\"b\":%d}}"
          e.tid
          (Json_check.float_repr ts)
          (Json_check.escape name) (kind_cat e.ekind) e.a e.b
      | Kernel_end ->
        pr ",{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"name\":\"%s\",\"cat\":\"%s\"}"
          e.tid
          (Json_check.float_repr ts)
          (Json_check.escape name) (kind_cat e.ekind)
      | _ ->
        pr
          ",{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"s\":\"t\",\
           \"name\":\"%s\",\"cat\":\"%s\",\"args\":{\"a\":%d,\"b\":%d}}"
          e.tid
          (Json_check.float_repr ts)
          (Json_check.escape name) (kind_cat e.ekind) e.a e.b)
    evs;
  pr "]}";
  Buffer.contents b

(* ---- post-mortem dumps ------------------------------------------------- *)

let dump_dir_ref = ref (Sys.getenv_opt "PARLOOPER_DUMP_DIR")
let set_dump_dir d = dump_dir_ref := d
let dump_dir () = !dump_dir_ref
let max_dumps_ref = ref 8
let set_max_dumps n = max_dumps_ref := max 0 n
let dump_lock = Mutex.create ()
let dump_seq = ref 0
let dumps_written () = !dump_seq

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc s)

(* Snapshot every ring into <dir>/flight-NNN.{txt,trace.json}. Returns the
   common path prefix, or [None] when no dump directory is configured, the
   dump budget is exhausted, or the recorder is disabled/empty. The trace
   JSON is validated before writing; the text dump carries the reason. *)
let post_mortem ~reason =
  match !dump_dir_ref with
  | None -> None
  | Some dir ->
    Mutex.lock dump_lock;
    let result =
      if !dump_seq >= !max_dumps_ref then None
      else begin
        let evs = events () in
        if evs = [] then None
        else begin
          incr dump_seq;
          let prefix = Filename.concat dir
              (Printf.sprintf "flight-%03d" !dump_seq)
          in
          match
            (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
            let trace = trace_of_events ~reason evs in
            Json_check.validate trace;
            write_file (prefix ^ ".txt") (text_of_events ~reason evs);
            write_file (prefix ^ ".trace.json") trace
          with
          | () ->
            Printf.eprintf
              "[parlooper] flight recorder: %s -> %s.{txt,trace.json}\n%!"
              reason prefix;
            Some prefix
          | exception e ->
            Printf.eprintf "[parlooper] flight recorder: dump failed (%s): %s\n%!"
              reason (Printexc.to_string e);
            None
        end
      end
    in
    Mutex.unlock dump_lock;
    result

(* ---- lifecycle --------------------------------------------------------- *)

let reset () =
  Mutex.lock rings_lock;
  Atomic.set rings [||];
  Atomic.set lost 0;
  Mutex.unlock rings_lock;
  Mutex.lock dump_lock;
  dump_seq := 0;
  Mutex.unlock dump_lock

(** Minimal dependency-free JSON well-formedness checker. The telemetry
    reports, Chrome traces and bench JSON files are emitted by hand-written
    printers; run them through this right after producing (and in tests) so
    malformed output fails at the source. Checks grammar only — no values
    are constructed. *)

exception Bad_json of string

(** Raises {!Bad_json} with a position-annotated message on malformed
    input; returns unit on well-formed JSON. *)
val validate : string -> unit

(** Non-raising variant: [Error msg] on malformed input. *)
val check : string -> (unit, string) result

(** Escape a string for inclusion in a JSON string literal (quotes,
    backslash, control characters; bytes ≥ 0x20 pass through verbatim). *)
val escape : string -> string

(** Render a float with no NaN/Inf and no exponent surprises. *)
val float_repr : float -> string

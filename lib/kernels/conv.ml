type config = {
  n : int;
  c : int;
  k : int;
  h : int;
  w : int;
  r : int;
  s : int;
  stride : int;
  pad : int;
  bc : int;
  bk : int;
  c_step : int;
  h_step : int;
  w_step : int;
  r_step : int;
  s_step : int;
  dtype : Datatype.t;
}

let make_config ?(stride = 1) ?(pad = 0) ?(bc = 32) ?(bk = 32) ?(c_step = 1)
    ?(h_step = 1) ?(w_step = 0) ?(r_step = 0) ?(s_step = 0)
    ?(dtype = Datatype.F32) ~n ~c ~k ~h ~w ~r ~s () =
  let bc = min bc c and bk = min bk k in
  if c mod bc <> 0 || k mod bk <> 0 then
    invalid_arg "Conv.make_config: bc/bk must divide C/K";
  let p = ((h + (2 * pad) - r) / stride) + 1 in
  let q = ((w + (2 * pad) - s) / stride) + 1 in
  if p <= 0 || q <= 0 then invalid_arg "Conv.make_config: empty output";
  let w_step = if w_step = 0 then q else w_step in
  let r_step = if r_step = 0 then r else r_step in
  let s_step = if s_step = 0 then s else s_step in
  if q mod w_step <> 0 then
    invalid_arg "Conv.make_config: w_step must divide Q";
  if r mod r_step <> 0 || s mod s_step <> 0 then
    invalid_arg "Conv.make_config: r_step/s_step must divide R/S";
  { n; c; k; h; w; r; s; stride; pad; bc; bk; c_step; h_step; w_step;
    r_step; s_step; dtype }

let out_dims cfg =
  let p = ((cfg.h + (2 * cfg.pad) - cfg.r) / cfg.stride) + 1 in
  let q = ((cfg.w + (2 * cfg.pad) - cfg.s) / cfg.stride) + 1 in
  (p, q)

let flops cfg =
  let p, q = out_dims cfg in
  2.0 *. float_of_int cfg.n *. float_of_int cfg.k *. float_of_int p
  *. float_of_int q *. float_of_int cfg.c *. float_of_int cfg.r
  *. float_of_int cfg.s

let cb cfg = cfg.c / cfg.bc
let kb cfg = cfg.k / cfg.bk

let loop_specs cfg =
  let p, q = out_dims cfg in
  [
    Loop_spec.make ~bound:cfg.n ~step:1 ();
    Loop_spec.make ~bound:(cb cfg) ~step:cfg.c_step ();
    Loop_spec.make ~bound:(kb cfg) ~step:1 ();
    Loop_spec.make ~bound:p ~step:cfg.h_step ();
    Loop_spec.make ~bound:q ~step:cfg.w_step ();
    Loop_spec.make ~bound:cfg.r ~step:cfg.r_step ();
    Loop_spec.make ~bound:cfg.s ~step:cfg.s_step ();
  ]

let default_spec = "Acdebfg"

type t = {
  cfg : config;
  loop : Threaded_loop.t;
  ker_first : Brgemm.kernel;
  ker_acc : Brgemm.kernel;
}

let create cfg spec_string =
  let mk beta =
    Dispatch.brgemm
      (Brgemm.make_config ~dtype:cfg.dtype ~beta ~m:cfg.w_step ~n:cfg.bk
         ~k:cfg.bc ())
  in
  {
    cfg;
    loop = Threaded_loop.create (loop_specs cfg) spec_string;
    ker_first = mk 0.0;
    ker_acc = mk 1.0;
  }

let config t = t.cfg

let padded_dims cfg = (cfg.h + (2 * cfg.pad), cfg.w + (2 * cfg.pad))

let pack_input cfg inp =
  assert (Tensor.dims inp = [| cfg.n; cfg.c; cfg.h; cfg.w |]);
  let hp, wp = padded_dims cfg in
  Tensor.init cfg.dtype
    [| cfg.n; cb cfg; hp; wp; cfg.bc |]
    (fun i ->
      let ih = i.(2) - cfg.pad and iw = i.(3) - cfg.pad in
      if ih < 0 || ih >= cfg.h || iw < 0 || iw >= cfg.w then 0.0
      else Tensor.get inp [| i.(0); (i.(1) * cfg.bc) + i.(4); ih; iw |])

let pack_weights cfg w =
  assert (Tensor.dims w = [| cfg.k; cfg.c; cfg.r; cfg.s |]);
  Tensor.init cfg.dtype
    [| kb cfg; cb cfg; cfg.r; cfg.s; cfg.bc; cfg.bk |]
    (fun i ->
      Tensor.get w
        [|
          (i.(0) * cfg.bk) + i.(5);
          (i.(1) * cfg.bc) + i.(4);
          i.(2);
          i.(3);
        |])

let alloc_output ?(dtype = Datatype.F32) cfg =
  let p, q = out_dims cfg in
  Tensor.create dtype [| cfg.n; kb cfg; p; q; cfg.bk |]

let unpack_output cfg o =
  let p, q = out_dims cfg in
  Tensor.init Datatype.F32 [| cfg.n; cfg.k; p; q |] (fun i ->
      Tensor.get o
        [| i.(0); i.(1) / cfg.bk; i.(2); i.(3); i.(1) mod cfg.bk |])

(* logical data moved once per run: input + weights in dtype, output f32 *)
let traffic_bytes cfg =
  let p, q = out_dims cfg in
  let dt = Datatype.bytes cfg.dtype in
  float_of_int
    (((cfg.n * cfg.c * cfg.h * cfg.w) + (cfg.k * cfg.c * cfg.r * cfg.s)) * dt)
  +. float_of_int (cfg.n * cfg.k * p * q * 4)

let instance_of t =
  let c = t.cfg in
  Printf.sprintf "n%d %dx%d %dx%dx%dx%d %s %s" c.n c.h c.w c.c c.k c.r c.s
    (Datatype.to_string c.dtype)
    (Threaded_loop.spec_string t.loop)

let run ?nthreads ?post t ~input ~weights ~output =
  let cfg = t.cfg in
  let p, q = out_dims cfg in
  let hp, wp = padded_dims cfg in
  (* element strides in the blocked layouts *)
  let i_cblk = hp * wp * cfg.bc in
  (* I: one Cb block *)
  let i_row = wp * cfg.bc in
  (* I: one padded input row *)
  let i_img = cb cfg * i_cblk in
  let w_cblk = cfg.r * cfg.s * cfg.bc * cfg.bk in
  let w_tap = cfg.bc * cfg.bk in
  let w_kblk = cb cfg * w_cblk in
  let o_row = q * cfg.bk in
  let o_kblk = p * o_row in
  let o_img = kb cfg * o_kblk in
  let use_stride = cfg.r = 1 && cfg.s = 1 && cfg.r_step = 1 && cfg.s_step = 1 in
  let body ind =
    let in_ = ind.(0) and ic = ind.(1) and ik = ind.(2) in
    let ih = ind.(3) and iw = ind.(4) and ir = ind.(5) and is = ind.(6) in
    let c_cnt = min cfg.c_step (cb cfg - ic) in
    let h_cnt = min cfg.h_step (p - ih) in
    let first = ic = 0 && ir = 0 && is = 0 in
    for h2 = 0 to h_cnt - 1 do
      let oh = ih + h2 in
      let ov =
        Tensor.view_flat output
          ~off:((in_ * o_img) + (ik * o_kblk) + (oh * o_row) + (iw * cfg.bk))
          ~rows:cfg.w_step ~cols:cfg.bk ~ld:cfg.bk
      in
      (* input pixel anchor for this output row/col and tap (ir, is),
         in padded coordinates *)
      let hin = (oh * cfg.stride) + ir in
      let win = (iw * cfg.stride) + is in
      let av =
        Tensor.view_flat input
          ~off:((in_ * i_img) + (ic * i_cblk) + (hin * i_row) + (win * cfg.bc))
          ~rows:cfg.w_step ~cols:cfg.bc ~ld:(cfg.stride * cfg.bc)
      in
      let bv =
        Tensor.view_flat weights
          ~off:
            ((ik * w_kblk) + (ic * w_cblk)
            + (((ir * cfg.s) + is) * w_tap))
          ~rows:cfg.bc ~cols:cfg.bk ~ld:cfg.bk
      in
      let ker = if first then t.ker_first else t.ker_acc in
      if use_stride then
        Brgemm.exec_stride ker ~a:av ~b:bv ~c:ov ~stride_a:i_cblk
          ~stride_b:w_cblk ~count:c_cnt
      else begin
        let nbatch = c_cnt * cfg.r_step * cfg.s_step in
        let offs_a = Array.make nbatch 0 and offs_b = Array.make nbatch 0 in
        let idx = ref 0 in
        for dc = 0 to c_cnt - 1 do
          for dr = 0 to cfg.r_step - 1 do
            for ds = 0 to cfg.s_step - 1 do
              offs_a.(!idx) <-
                (dc * i_cblk) + (dr * i_row) + (ds * cfg.bc);
              offs_b.(!idx) <-
                (dc * w_cblk) + ((((dr * cfg.s) + ds)) * w_tap);
              incr idx
            done
          done
        done;
        Brgemm.exec_offsets ker ~a:av ~b:bv ~c:ov ~offs_a ~offs_b
      end;
      (* fused post-op once the block's reduction is complete *)
      match post with
      | Some f
        when ic + c_cnt >= cb cfg
             && ir + cfg.r_step >= cfg.r
             && is + cfg.s_step >= cfg.s ->
        f ~n:in_ ~kb:ik ~p:oh ~q:iw ~block:ov
      | _ -> ()
    done
  in
  if not (Telemetry.Registry.enabled ()) then
    Threaded_loop.run ?nthreads t.loop body
  else begin
    let t0 = Telemetry.Clock.now_ns () in
    Threaded_loop.run ?nthreads t.loop body;
    Telemetry.Registry.record_kernel ~kind:"conv" ~instance:(instance_of t)
      ~flops:(flops cfg) ~bytes:(traffic_bytes cfg)
      ~seconds:(Telemetry.Clock.elapsed_s ~since:t0)
  end

let run_logical ?nthreads t ~input ~weights =
  let cfg = t.cfg in
  let ip = pack_input cfg input in
  let wp = pack_weights cfg weights in
  let o = alloc_output cfg in
  run ?nthreads t ~input:ip ~weights:wp ~output:o;
  unpack_output cfg o

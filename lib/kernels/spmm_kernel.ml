type config = {
  m : int;
  n : int;
  k : int;
  bm : int;
  bk : int;
  bn : int;
  dtype : Datatype.t;
}

let make_config ?(bn = 32) ?(dtype = Datatype.F32) ~m ~n ~k ~bm ~bk () =
  if m mod bm <> 0 || k mod bk <> 0 then
    invalid_arg "Spmm_kernel.make_config: bm/bk must divide M/K";
  let bn = min bn n in
  if n mod bn <> 0 then
    invalid_arg "Spmm_kernel.make_config: bn must divide N";
  { m; n; k; bm; bk; bn; dtype }

let dense_flops c = 2.0 *. float_of_int c.m *. float_of_int c.n *. float_of_int c.k

let effective_flops c ~a =
  dense_flops c *. (1.0 -. Bcsc.sparsity a)

let loop_specs c =
  [
    Loop_spec.make ~bound:(c.m / c.bm) ~step:1 ();
    Loop_spec.make ~bound:(c.n / c.bn) ~step:1 ();
  ]

let default_spec = "AB"

type t = {
  cfg : config;
  loop : Threaded_loop.t;
  kernel : Spmm.kernel;
}

let create cfg spec_string =
  let kernel =
    Dispatch.spmm
      (Spmm.make_config ~dtype:cfg.dtype ~beta:0.0 ~n:cfg.bn ~bm:cfg.bm
         ~bk:cfg.bk ())
  in
  { cfg; loop = Threaded_loop.create (loop_specs cfg) spec_string; kernel }

let config t = t.cfg

let pack_b cfg b =
  assert (Tensor.dims b = [| cfg.k; cfg.n |]);
  Vnni.pack (Tensor.cast b cfg.dtype)

(* logical data moved once per run: the stored (dense) fraction of A plus
   dense B in dtype, C in f32 *)
let traffic_bytes c ~a =
  let dt = Datatype.bytes c.dtype in
  (float_of_int (c.m * c.k * dt) *. (1.0 -. Bcsc.sparsity a))
  +. float_of_int ((c.k * c.n * dt) + (c.m * c.n * 4))

let instance_of t ~a =
  let c = t.cfg in
  Printf.sprintf "%dx%dx%d %.0f%%sp %s %s" c.m c.n c.k
    (100.0 *. Bcsc.sparsity a)
    (Datatype.to_string c.dtype)
    (Threaded_loop.spec_string t.loop)

let run ?nthreads t ~a ~b ~c =
  let cfg = t.cfg in
  assert (a.Bcsc.rows = cfg.m && a.Bcsc.cols = cfg.k);
  assert (Tensor.dims c = [| cfg.m; cfg.n |]);
  let v = Datatype.vnni_factor cfg.dtype in
  let bv =
    Tensor.view_flat b ~off:0 ~rows:(cfg.k / v) ~cols:(cfg.n * v)
      ~ld:(cfg.n * v)
  in
  let body ind =
    let im = ind.(0) and in_ = ind.(1) in
    let cv =
      Tensor.view_flat c
        ~off:((im * cfg.bm * cfg.n) + (in_ * cfg.bn))
        ~rows:cfg.bm ~cols:cfg.bn ~ld:cfg.n
    in
    Spmm.exec t.kernel ~a ~block_row:im ~b:bv ~col:(in_ * cfg.bn) ~c:cv
  in
  if not (Telemetry.Registry.enabled ()) then
    Threaded_loop.run ?nthreads t.loop body
  else begin
    let t0 = Telemetry.Clock.now_ns () in
    Threaded_loop.run ?nthreads t.loop body;
    Telemetry.Registry.record_kernel ~kind:"spmm" ~instance:(instance_of t ~a)
      ~flops:(effective_flops cfg ~a) ~bytes:(traffic_bytes cfg ~a)
      ~seconds:(Telemetry.Clock.elapsed_s ~since:t0)
  end

let run_logical ?nthreads t ~a ~b =
  let cfg = t.cfg in
  let bp = pack_b cfg b in
  let c = Tensor.create Datatype.F32 [| cfg.m; cfg.n |] in
  run ?nthreads t ~a ~b:bp ~c;
  c

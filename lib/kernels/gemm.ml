type config = {
  m : int;
  n : int;
  k : int;
  bm : int;
  bn : int;
  bk : int;
  dtype : Datatype.t;
  vnni_b : bool;
  k_step : int;
  mk_blocks : int list;
  nk_blocks : int list;
  kk_blocks : int list;
}

let make_config ?(bm = 32) ?(bn = 32) ?(bk = 32) ?(dtype = Datatype.F32)
    ?(vnni_b = false) ?(k_step = 1) ?(mk_blocks = []) ?(nk_blocks = [])
    ?(kk_blocks = []) ~m ~n ~k () =
  let bm = min bm m and bn = min bn n and bk = min bk k in
  if m mod bm <> 0 || n mod bn <> 0 || k mod bk <> 0 then
    invalid_arg "Gemm.make_config: block sizes must divide M, N, K";
  if vnni_b && bk mod Datatype.vnni_factor dtype <> 0 then
    invalid_arg "Gemm.make_config: bk must be divisible by the VNNI factor";
  { m; n; k; bm; bn; bk; dtype; vnni_b; k_step; mk_blocks; nk_blocks; kk_blocks }

let mb c = c.m / c.bm
let nb c = c.n / c.bn
let kb c = c.k / c.bk

let flops c = 2.0 *. float_of_int c.m *. float_of_int c.n *. float_of_int c.k

let loop_specs c =
  [
    Loop_spec.make ~bound:(kb c) ~step:c.k_step ~block_steps:c.kk_blocks ();
    Loop_spec.make ~bound:(mb c) ~step:1 ~block_steps:c.mk_blocks ();
    Loop_spec.make ~bound:(nb c) ~step:1 ~block_steps:c.nk_blocks ();
  ]

let default_spec = "BCa"

type t = {
  cfg : config;
  loop : Threaded_loop.t;
  ker_first : Brgemm.kernel;  (** beta = 0: zeroing fold of the first visit *)
  ker_acc : Brgemm.kernel;  (** beta = 1 *)
}

let create cfg spec_string =
  let b_layout = if cfg.vnni_b then Brgemm.Vnni else Brgemm.Flat in
  let mk beta =
    Dispatch.brgemm
      (Brgemm.make_config ~dtype:cfg.dtype ~b_layout ~beta ~m:cfg.bm ~n:cfg.bn
         ~k:cfg.bk ())
  in
  {
    cfg;
    loop = Threaded_loop.create (loop_specs cfg) spec_string;
    ker_first = mk 0.0;
    ker_acc = mk 1.0;
  }

(* ---- spec resolver hook ----
   An installed resolver may substitute the instantiation of a GEMM at
   nest-compile time: it returns a replacement (config, spec) — same
   m/n/k/block/dtype, possibly different blocking lists — or None to keep
   the caller's choice. The online tuner (lib/tuner Spec_cache) installs
   one so serve-path layers pick up tuned specs without any layer code
   change; the tuner itself always calls [create] directly, so resolution
   cannot recurse. The hook is an atomic ref: install/clear are safe from
   any domain. *)

let spec_resolver :
    (config -> string -> (config * string) option) option Atomic.t =
  Atomic.make None

let set_spec_resolver f = Atomic.set spec_resolver (Some f)
let clear_spec_resolver () = Atomic.set spec_resolver None

let create_resolved cfg spec_string =
  match Atomic.get spec_resolver with
  | None -> create cfg spec_string
  | Some resolve -> (
    match resolve cfg spec_string with
    | Some (cfg', spec') -> create cfg' spec'
    | None -> create cfg spec_string)

let config t = t.cfg
let spec t = Threaded_loop.spec_string t.loop

(* ---- layout helpers ---- *)

let pack_a c a =
  assert (Tensor.dims a = [| c.m; c.k |]);
  Tensor.init c.dtype
    [| mb c; kb c; c.bm; c.bk |]
    (fun i ->
      Tensor.get a [| (i.(0) * c.bm) + i.(2); (i.(1) * c.bk) + i.(3) |])

let pack_b c b =
  assert (Tensor.dims b = [| c.k; c.n |]);
  if c.vnni_b then begin
    let v = Datatype.vnni_factor c.dtype in
    (* [Nb][Kb][bk/v][bn][v] *)
    Tensor.init c.dtype
      [| nb c; kb c; c.bk / v; c.bn; v |]
      (fun i ->
        Tensor.get b
          [|
            (i.(1) * c.bk) + (i.(2) * v) + i.(4); (i.(0) * c.bn) + i.(3);
          |])
  end
  else
    Tensor.init c.dtype
      [| nb c; kb c; c.bk; c.bn |]
      (fun i ->
        Tensor.get b [| (i.(1) * c.bk) + i.(2); (i.(0) * c.bn) + i.(3) |])

let pack_c c t =
  assert (Tensor.dims t = [| c.m; c.n |]);
  Tensor.init Datatype.F32
    [| nb c; mb c; c.bm; c.bn |]
    (fun i ->
      Tensor.get t [| (i.(1) * c.bm) + i.(2); (i.(0) * c.bn) + i.(3) |])

let unpack_c c t =
  Tensor.init Datatype.F32 [| c.m; c.n |] (fun i ->
      Tensor.get t
        [| i.(1) / c.bn; i.(0) / c.bm; i.(0) mod c.bm; i.(1) mod c.bn |])

let alloc_c ?(dtype = Datatype.F32) c =
  Tensor.create dtype [| nb c; mb c; c.bm; c.bn |]

(* ---- execution (the paper's Listing 1 body) ---- *)

let block_elems_b c =
  (* elements per [ik] step of B, both layouts *)
  c.bk * c.bn

(* logical data moved once per run: A + B in dtype, C in f32 *)
let traffic_bytes c =
  let dt = Datatype.bytes c.dtype in
  float_of_int (((c.m * c.k) + (c.k * c.n)) * dt)
  +. float_of_int (c.m * c.n * 4)

let instance_of t =
  let c = t.cfg in
  Printf.sprintf "%dx%dx%d %s %s" c.m c.n c.k (Datatype.to_string c.dtype)
    (Threaded_loop.spec_string t.loop)

let run ?nthreads ?post t ~a ~b ~c =
  let cfg = t.cfg in
  let v = Datatype.vnni_factor cfg.dtype in
  let stride_a = cfg.bm * cfg.bk in
  let stride_b = block_elems_b cfg in
  let a_row = cfg.k * cfg.bm in
  (* elements per [im] block row of A *)
  let b_row = cfg.k * cfg.bn in
  let c_row = cfg.m * cfg.bn in
  let body ind =
    let ik = ind.(0) and im = ind.(1) and in_ = ind.(2) in
    let brcount = min cfg.k_step (kb cfg - ik) in
    let av =
      Tensor.view_flat a
        ~off:((im * a_row) + (ik * stride_a))
        ~rows:cfg.bm ~cols:cfg.bk ~ld:cfg.bk
    in
    let bv =
      if cfg.vnni_b then
        Tensor.view_flat b
          ~off:((in_ * b_row) + (ik * stride_b))
          ~rows:(cfg.bk / v) ~cols:(cfg.bn * v) ~ld:(cfg.bn * v)
      else
        Tensor.view_flat b
          ~off:((in_ * b_row) + (ik * stride_b))
          ~rows:cfg.bk ~cols:cfg.bn ~ld:cfg.bn
    in
    let cv =
      Tensor.view_flat c
        ~off:((in_ * c_row) + (im * cfg.bm * cfg.bn))
        ~rows:cfg.bm ~cols:cfg.bn ~ld:cfg.bn
    in
    let ker = if ik = 0 then t.ker_first else t.ker_acc in
    Brgemm.exec_stride ker ~a:av ~b:bv ~c:cv ~stride_a ~stride_b ~count:brcount;
    (* fused post-op on the finished C block (bias, activation, ...) *)
    match post with
    | Some f when ik + brcount >= kb cfg -> f ~im ~in_ ~c_block:cv
    | _ -> ()
  in
  if not (Telemetry.Registry.enabled ()) then
    Threaded_loop.run ?nthreads t.loop body
  else begin
    let t0 = Telemetry.Clock.now_ns () in
    Threaded_loop.run ?nthreads t.loop body;
    Telemetry.Registry.record_kernel ~kind:"gemm" ~instance:(instance_of t)
      ~flops:(flops cfg) ~bytes:(traffic_bytes cfg)
      ~seconds:(Telemetry.Clock.elapsed_s ~since:t0)
  end

let run_logical ?nthreads t ~a ~b =
  let cfg = t.cfg in
  let ap = pack_a cfg a in
  let bp = pack_b cfg b in
  let cp = alloc_c cfg in
  run ?nthreads t ~a:ap ~b:bp ~c:cp;
  unpack_c cfg cp

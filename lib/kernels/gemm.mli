(** Blocked GEMM via PARLOOPER + BRGEMM TPP — the paper's Listing 1.

    Logical tensors are [A: M x K], [B: K x N], [C: M x N] with
    [C += A x B]; storage is blocked:
    - A as [Mb][Kb][bm][bk]
    - B as [Nb][Kb][bk][bn]        (or its VNNI packing for BF16)
    - C as [Nb][Mb][bm][bn]

    Three logical loops are declared — a: Kb (step [k_step], the
    batch-reduce count), b: Mb, c: Nb — and the instantiation is entirely
    governed by the [loop_spec_string]. The kernel body zeroes a C block on
    its first K-visit and issues one stride-based BRGEMM per visit; the
    code is identical for all precisions. *)

type config = {
  m : int;
  n : int;
  k : int;
  bm : int;
  bn : int;
  bk : int;
  dtype : Datatype.t;
  vnni_b : bool;  (** store B VNNI-packed (required path for BF16 HW) *)
  k_step : int;  (** K-loop step in block units = batch-reduce count *)
  mk_blocks : int list;  (** blocking steps for the M loop (block units) *)
  nk_blocks : int list;  (** blocking steps for the N loop *)
  kk_blocks : int list;  (** blocking steps for the K loop *)
}

(** [make_config ~m ~n ~k ()] with defaults: 32x32x32 blocks (clamped to
    the problem), FP32, flat B, k_step = 1, no extra blocking steps. *)
val make_config :
  ?bm:int ->
  ?bn:int ->
  ?bk:int ->
  ?dtype:Datatype.t ->
  ?vnni_b:bool ->
  ?k_step:int ->
  ?mk_blocks:int list ->
  ?nk_blocks:int list ->
  ?kk_blocks:int list ->
  m:int ->
  n:int ->
  k:int ->
  unit ->
  config

val mb : config -> int  (** M / bm *)
val nb : config -> int
val kb : config -> int

(** FLOPs of one full GEMM: 2*M*N*K. *)
val flops : config -> float

(** Logical bytes moved once per run (A + B in dtype, C in f32); used for
    telemetry arithmetic-intensity reporting. *)
val traffic_bytes : config -> float

(** The logical loop declarations (a = K blocks, b = M blocks,
    c = N blocks) fed to PARLOOPER. *)
val loop_specs : config -> Loop_spec.t list

(** A safe default instantiation: M and N blocks collapsed-parallel
    outermost, K innermost ("BCa"). *)
val default_spec : string

type t

(** [create cfg spec_string] — compiles (or fetches from the JIT cache)
    the loop nest and dispatches the BRGEMM kernels. *)
val create : config -> string -> t

val config : t -> config
val spec : t -> string

(** {2 Spec resolver hook}

    An installed resolver may substitute a GEMM's instantiation at
    nest-compile time: given the caller's config and spec it returns a
    replacement [(config, spec)] — same shape/blocks/dtype, possibly
    different blocking lists — or [None] to keep the caller's choice.
    The online tuner installs one so serve-path layers pick up tuned
    specs with zero layer-code changes. Install/clear are atomic and
    safe from any domain. *)

val set_spec_resolver : (config -> string -> (config * string) option) -> unit
val clear_spec_resolver : unit -> unit

(** [create] routed through the resolver when one is installed;
    otherwise identical to [create]. Tuning code must use [create] (the
    resolver is never consulted there), serve-path layers use
    [create_resolved]. *)
val create_resolved : config -> string -> t

(** Layout helpers between logical rank-2 tensors and blocked storage. *)
val pack_a : config -> Tensor.t -> Tensor.t
val pack_b : config -> Tensor.t -> Tensor.t
val pack_c : config -> Tensor.t -> Tensor.t
val unpack_c : config -> Tensor.t -> Tensor.t

(** Fresh zeroed blocked C ([dtype] defaults to FP32 accumulation; pass
    the input dtype to emulate low-precision activation stores). *)
val alloc_c : ?dtype:Datatype.t -> config -> Tensor.t

(** [run ?nthreads ?post t ~a ~b ~c] with blocked tensors; C is
    overwritten (each block is zeroed on its first K-visit). [post], if
    given, is invoked on each C block right after its last K-visit — the
    fusion point for bias/activation TPPs (requires a spec in which, for a
    fixed (im, in), all K iterations run on one thread in order, which
    holds whenever the K loop is not parallelized). *)
val run :
  ?nthreads:int ->
  ?post:(im:int -> in_:int -> c_block:Tensor.View.t -> unit) ->
  t ->
  a:Tensor.t ->
  b:Tensor.t ->
  c:Tensor.t ->
  unit

(** Convenience: packs logical rank-2 A and B, runs, unpacks C. *)
val run_logical : ?nthreads:int -> t -> a:Tensor.t -> b:Tensor.t -> Tensor.t

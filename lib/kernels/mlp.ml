module View = Tensor.View

type activation = No_activation | Relu | Gelu | Sigmoid

type layer = {
  gemm : Gemm.t;
  weights : Tensor.t;
  bias : Tensor.t option;
  act : activation;
}

type t = {
  layers : layer array;
  batch : int;
  block : int;
  dtype : Datatype.t;
}

let create ~rng ?(dtype = Datatype.F32) ?(bias = true) ?(act = Relu)
    ?(spec = Gemm.default_spec) ~batch ~features ~block () =
  if List.length features < 2 then
    invalid_arg "Mlp.create: need at least input and output widths";
  List.iter
    (fun f ->
      if f mod block <> 0 then
        invalid_arg "Mlp.create: widths must be divisible by the block size")
    features;
  if batch mod block <> 0 then
    invalid_arg "Mlp.create: batch must be divisible by the block size";
  let pairs =
    let rec go = function
      | a :: (b :: _ as rest) -> (a, b) :: go rest
      | _ -> []
    in
    go features
  in
  let layers =
    List.map
      (fun (fin, fout) ->
        let cfg =
          Gemm.make_config ~bm:block ~bn:block ~bk:block ~dtype ~m:fout
            ~n:batch ~k:fin ()
        in
        let gemm = Gemm.create cfg spec in
        (* Xavier-ish init *)
        let scale = sqrt (2.0 /. float_of_int fin) in
        let w_logical =
          Tensor.init dtype [| fout; fin |] (fun _ ->
              Prng.uniform rng ~scale)
        in
        let weights = Gemm.pack_a cfg w_logical in
        let bias =
          if bias then begin
            let b = Tensor.create Datatype.F32 [| fout |] in
            Tensor.fill_random b rng ~scale:0.1;
            Some b
          end
          else None
        in
        { gemm; weights; bias; act })
      pairs
  in
  { layers = Array.of_list layers; batch; block; dtype }

let pack_input t input =
  let l0 = t.layers.(0) in
  Gemm.pack_b (Gemm.config l0.gemm) input

let act_op = function
  | No_activation -> None
  | Relu -> Some Tpp_unary.Relu
  | Gelu -> Some Tpp_unary.Gelu
  | Sigmoid -> Some Tpp_unary.Sigmoid

let layer_post layer ~im ~in_:_ ~c_block =
  (match layer.bias with
  | Some b ->
    let bm = c_block.View.rows in
    let bias_col =
      Tensor.view_flat b ~off:(im * bm) ~rows:bm ~cols:1 ~ld:1
    in
    Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Col ~a:c_block
      ~b:bias_col ~out:c_block
  | None -> ());
  match act_op layer.act with
  | Some op -> Tpp_unary.exec op ~inp:c_block ~out:c_block
  | None -> ()

let flops t =
  Array.fold_left
    (fun acc l -> acc +. Gemm.flops (Gemm.config l.gemm))
    0.0 t.layers

(* logical data moved once per forward: each layer's weights + in/out acts *)
let traffic_bytes t =
  Array.fold_left
    (fun acc l -> acc +. Gemm.traffic_bytes (Gemm.config l.gemm))
    0.0 t.layers

let instance_of t =
  let widths =
    Array.to_list t.layers
    |> List.map (fun l -> string_of_int (Gemm.config l.gemm).Gemm.m)
  in
  Printf.sprintf "n%d %s %s" t.batch
    (String.concat "-"
       (string_of_int (Gemm.config t.layers.(0).gemm).Gemm.k :: widths))
    (Datatype.to_string t.dtype)

let forward ?nthreads t input =
  let go () =
    Array.fold_left
      (fun acts layer ->
        let cfg = Gemm.config layer.gemm in
        let c = Gemm.alloc_c ~dtype:t.dtype cfg in
        Gemm.run ?nthreads ~post:(layer_post layer) layer.gemm ~a:layer.weights
          ~b:acts ~c;
        c)
      input t.layers
  in
  if not (Telemetry.Registry.enabled ()) then go ()
  else begin
    let t0 = Telemetry.Clock.now_ns () in
    let r = go () in
    Telemetry.Registry.record_kernel ~kind:"mlp" ~instance:(instance_of t)
      ~flops:(flops t) ~bytes:(traffic_bytes t)
      ~seconds:(Telemetry.Clock.elapsed_s ~since:t0);
    r
  end

let unpack_output t ~layer_idx blocked =
  Gemm.unpack_c (Gemm.config t.layers.(layer_idx).gemm) blocked

let apply_act act x =
  match act with
  | No_activation -> x
  | Relu -> Reference.relu x
  | Gelu -> Reference.gelu x
  | Sigmoid -> Reference.sigmoid x

let reference_forward t input =
  Array.fold_left
    (fun acts layer ->
      let cfg = Gemm.config layer.gemm in
      let w =
        (* reconstruct logical weights from the blocked tensor *)
        Tensor.init (Tensor.dtype layer.weights)
          [| cfg.Gemm.m; cfg.Gemm.k |]
          (fun i ->
            Tensor.get layer.weights
              [|
                i.(0) / cfg.Gemm.bm;
                i.(1) / cfg.Gemm.bk;
                i.(0) mod cfg.Gemm.bm;
                i.(1) mod cfg.Gemm.bk;
              |])
      in
      let o = Reference.matmul w acts in
      let dims = Tensor.dims o in
      Tensor.init Datatype.F32 dims (fun i ->
          let v = Tensor.get o i in
          let v =
            match layer.bias with
            | Some b -> v +. Tensor.get b [| i.(0) |]
            | None -> v
          in
          (* intermediate activations are stored in the MLP's dtype, as in
             the blocked path *)
          Datatype.quantize t.dtype (apply_act layer.act v)))
    input t.layers

exception Invalid_spec of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_spec s)) fmt

type par_kind =
  | Seq
  | Collapse of { group : int; pos : int; size : int }
  | Grid of { axis : Spec_parser.grid_axis; ways : int }

type level = {
  loop : int;
  occ : int;  (** occurrence index of this loop, outer-to-inner *)
  step : int;
  parent_step : int option;  (** step of the enclosing occurrence *)
  parent_level : int;  (** level index of the enclosing occurrence, -1 *)
  barrier_after : bool;
  par : par_kind;
}

type t = {
  specs : Loop_spec.t array;
  levels : level array;
  innermost : int array;  (** per loop: level index of its last occurrence *)
  schedule : Spec_parser.schedule;
  grid : (int * int * int) option;  (** (R, C, L) for PAR-MODE 2 *)
  has_parallel : bool;
}

let num_loops t = Array.length t.specs

(* ---- validation + level construction ---- *)

let compile specs parsed =
  let nspecs = Array.length specs in
  if nspecs = 0 then fail "no logical loops declared";
  let used = Spec_parser.num_loops_used parsed in
  if used > nspecs then
    fail "spec string uses %d loops but only %d are declared" used nspecs;
  for l = 0 to nspecs - 1 do
    if Spec_parser.occurrence_count parsed l = 0 then
      fail "logical loop '%c' is declared but absent from the spec string"
        (Char.chr (l + Char.code 'a'))
  done;
  let occs = Array.of_list parsed.Spec_parser.occurrences in
  let totals =
    Array.init nspecs (fun l -> Spec_parser.occurrence_count parsed l)
  in
  (* assign occurrence indices and steps *)
  let seen = Array.make nspecs 0 in
  let mixed_grid =
    Spec_parser.has_grid parsed
    && Array.exists
         (fun (o : Spec_parser.occurrence) -> o.parallel && o.grid = None)
         occs
  in
  if mixed_grid then
    fail
      "spec string mixes explicit thread-grid annotations (PAR-MODE 2) with \
       un-annotated parallel loops (PAR-MODE 1)";
  let levels =
    Array.map
      (fun (o : Spec_parser.occurrence) ->
        let l = o.loop in
        let occ = seen.(l) in
        seen.(l) <- occ + 1;
        let total = totals.(l) in
        let step =
          try Loop_spec.step_at specs.(l) ~occ ~total
          with Invalid_argument m -> fail "%s" m
        in
        let parent_step =
          if occ = 0 then None
          else begin
            let ps = Loop_spec.step_at specs.(l) ~occ:(occ - 1) ~total in
            if ps mod step <> 0 then
              fail
                "loop '%c': blocking step %d at occurrence %d does not \
                 divide parent step %d (perfect nesting required)"
                (Char.chr (l + Char.code 'a'))
                step occ ps;
            Some ps
          end
        in
        let par =
          match (o.parallel, o.grid) with
          | false, _ -> Seq
          | true, Some (axis, ways) -> Grid { axis; ways }
          | true, None -> Collapse { group = -1; pos = -1; size = -1 }
        in
        {
          loop = l;
          occ;
          step;
          parent_step;
          parent_level = -1;
          barrier_after = o.barrier_after;
          par;
        })
      occs
  in
  (* resolve parent occurrence level indices and innermost occurrences *)
  let innermost = Array.make nspecs (-1) in
  let last_level_of = Array.make nspecs (-1) in
  Array.iteri
    (fun i lv ->
      levels.(i) <- { lv with parent_level = last_level_of.(lv.loop) };
      last_level_of.(lv.loop) <- i;
      (* the last occurrence is the innermost one *)
      if lv.occ = totals.(lv.loop) - 1 then innermost.(lv.loop) <- i)
    levels;
  (* group consecutive PAR-MODE 1 levels into collapse groups *)
  let group = ref (-1) in
  let i = ref 0 in
  let n = Array.length levels in
  while !i < n do
    (match levels.(!i).par with
    | Collapse _ ->
      incr group;
      let j = ref !i in
      while
        !j < n && (match levels.(!j).par with Collapse _ -> true | _ -> false)
      do
        incr j
      done;
      let size = !j - !i in
      for k = !i to !j - 1 do
        levels.(k) <-
          { (levels.(k)) with par = Collapse { group = !group; pos = k - !i; size } }
      done;
      i := !j
    | _ -> incr i)
  done;
  let grid =
    if Spec_parser.has_grid parsed then begin
      let r, c, l = Spec_parser.grid_shape parsed in
      Some (r, c, l)
    end
    else None
  in
  let has_parallel =
    Array.exists (fun lv -> lv.par <> Seq) levels
  in
  {
    specs;
    levels;
    innermost;
    schedule = parsed.Spec_parser.schedule;
    grid;
    has_parallel;
  }

let grid_threads t =
  match t.grid with Some (r, c, l) -> Some (r * c * l) | None -> None

let required_threads t ~default =
  match t.grid with
  | Some (r, c, l) -> r * c * l
  | None -> if t.has_parallel then max 1 default else 1

(* trip count of a level: number of iterations of this loop occurrence
   within one activation. Blocked occurrences have a uniform trip
   (parent_step / step); outermost occurrences have ceil(range/step). *)
let static_trip t lv =
  match lv.parent_step with
  | Some ps -> ps / lv.step
  | None ->
    let s = t.specs.(lv.loop) in
    (s.Loop_spec.bound - s.Loop_spec.start + lv.step - 1) / lv.step

(* value bounds of one activation: base comes from the parent occurrence
   level's current value for blocked occurrences, from the declaration for
   outermost ones; the upper bound clamps to the declared loop bound. *)
let activation_range t lv cur =
  let s = t.specs.(lv.loop) in
  match lv.parent_step with
  | None -> (s.Loop_spec.start, s.Loop_spec.bound)
  | Some ps ->
    let base = cur.(lv.parent_level) in
    (base, min (base + ps) s.Loop_spec.bound)

let grid_coords ~grid ~tid =
  let _, c, l = grid in
  let row = tid / (c * l) in
  let col = tid / l mod c in
  let layer = tid mod l in
  (row, col, layer)

let body_invocations t =
  (* run the serial nest logic, counting innermost visits *)
  let count = ref 0 in
  let cur = Array.make (Array.length t.levels) 0 in
  let n = Array.length t.levels in
  let rec go i =
    if i = n then incr count
    else begin
      let lv = t.levels.(i) in
      let lo, hi = activation_range t lv cur in
      let v = ref lo in
      while !v < hi do
        cur.(i) <- !v;
        go (i + 1);
        v := !v + lv.step
      done
    end
  in
  go 0;
  !count

(* ---- execution ---- *)

let exec_on_ctx t ~(ctx : Team.ctx) ~body =
  let nlevels = Array.length t.levels in
  (* current value per loop level; the body's logical-index array is the
     innermost occurrence value of each loop *)
  let cur = Array.make nlevels 0 in
  let env = Array.make (Array.length t.specs) 0 in
  let fill_env () =
    for l = 0 to Array.length env - 1 do
      env.(l) <- cur.(t.innermost.(l))
    done
  in
  let encounter = ref 0 in
  (* decompose tid for PAR-MODE 2 *)
  let my_row, my_col, my_layer =
    match t.grid with
    | Some g -> grid_coords ~grid:g ~tid:ctx.Team.tid
    | None -> (0, 0, 0)
  in
  let axis_id (axis : Spec_parser.grid_axis) =
    match axis with R -> my_row | C -> my_col | L -> my_layer
  in
  let rec run_level i =
    if i = nlevels then begin
      fill_env ();
      body env
    end
    else begin
      let lv = t.levels.(i) in
      (match lv.par with
      | Seq ->
        let lo, hi = activation_range t lv cur in
        let v = ref lo in
        while !v < hi do
          cur.(i) <- !v;
          run_level (i + 1);
          v := !v + lv.step
        done
      | Grid { axis; ways } ->
        let lo, hi = activation_range t lv cur in
        let trip = (hi - lo + lv.step - 1) / lv.step in
        let chunk = (trip + ways - 1) / ways in
        let id = axis_id axis in
        let c0 = id * chunk and c1 = min ((id + 1) * chunk) trip in
        for c = c0 to c1 - 1 do
          cur.(i) <- lo + (c * lv.step);
          run_level (i + 1)
        done
      | Collapse { pos; size; _ } when pos = 0 ->
        (* linearize the whole group *)
        let glevels = Array.sub t.levels i size in
        let trips = Array.map (fun l -> static_trip t l) glevels in
        let total = Array.fold_left ( * ) 1 trips in
        let decode_and_run idx =
          (* outer-to-inner decomposition; blocked members read their base
             from their parent occurrence level (which, if inside the
             group, was just set). Tuples whose clamped value overruns a
             loop bound (partial trailing block) are skipped. *)
          let rem = ref idx in
          let divisor = ref total in
          let valid = ref true in
          Array.iteri
            (fun g lv' ->
              divisor := !divisor / trips.(g);
              let comp = !rem / !divisor in
              rem := !rem mod !divisor;
              let base =
                if lv'.parent_level < 0 then
                  t.specs.(lv'.loop).Loop_spec.start
                else cur.(lv'.parent_level)
              in
              let v = base + (comp * lv'.step) in
              if v >= t.specs.(lv'.loop).Loop_spec.bound then valid := false;
              cur.(i + g) <- v)
            glevels;
          if !valid then run_level (i + size)
        in
        (match t.schedule with
        | Spec_parser.Static ->
          (* contiguous block per thread, like omp static *)
          let per = total / ctx.Team.nthreads in
          let rem = total mod ctx.Team.nthreads in
          let tid = ctx.Team.tid in
          let lo = (tid * per) + min tid rem in
          let hi = lo + per + if tid < rem then 1 else 0 in
          for idx = lo to hi - 1 do
            decode_and_run idx
          done
        | Spec_parser.Dynamic chunk ->
          let instance = !encounter in
          incr encounter;
          let continue = ref true in
          while !continue do
            let start = ctx.Team.fetch_chunk ~instance ~chunk in
            if start >= total then continue := false
            else
              for idx = start to min (start + chunk) total - 1 do
                decode_and_run idx
              done
          done)
      | Collapse _ ->
        (* non-leading members are consumed by the leading member *)
        run_level (i + 1));
      (* barrier on the last member of a collapse group or any other level *)
      let run_barrier =
        match lv.par with
        | Collapse { pos; size; _ } -> lv.barrier_after && pos = size - 1
        | _ -> lv.barrier_after
      in
      if run_barrier then ctx.Team.barrier ()
    end
  in
  (* collapse groups are entered only via their leading member: guard
     against direct recursion into non-leading members by construction of
     run_level — the leading member skips past the whole group. *)
  run_level 0

(* The recursive skip above must not re-run non-leading collapse members;
   run_level i for a non-leading member is only reachable from the code
   path `run_level (i + 1)` of the member before it, which never happens
   because the leading member jumps to i + size. The `Collapse _` fallback
   branch is therefore defensive. *)

let check_threads t nthreads =
  match t.grid with
  | Some (r, c, l) when r * c * l <> nthreads ->
    fail "thread grid %dx%dx%d needs %d threads, got %d" r c l (r * c * l)
      nthreads
  | _ -> ()

let exec ?label t ~nthreads ~init ~term ~body =
  check_threads t nthreads;
  if not (Telemetry.Registry.enabled ()) then
    (* fast path: tracing off costs one bool load per run *)
    Team.run ~nthreads (fun ctx ->
        (match init with Some f -> f () | None -> ());
        exec_on_ctx t ~ctx ~body;
        match term with Some f -> f () | None -> ())
  else begin
    let name = match label with Some l -> l | None -> "loop-nest" in
    let wait_counter =
      Telemetry.Counter.find_or_create Telemetry.Registry.barrier_wait_ns_name
    in
    Team.run ~nthreads (fun ctx ->
        (* time the whole per-thread traversal and, separately, the time
           this thread spends blocked in barriers *)
        let wait_ns = ref 0L in
        let ctx_traced =
          {
            ctx with
            Team.barrier =
              (fun () ->
                let b0 = Telemetry.Clock.now_ns () in
                ctx.Team.barrier ();
                wait_ns :=
                  Int64.add !wait_ns
                    (Telemetry.Clock.elapsed_ns ~since:b0));
          }
        in
        let t0 = Telemetry.Clock.now_ns () in
        (match init with Some f -> f () | None -> ());
        exec_on_ctx t ~ctx:ctx_traced ~body;
        (match term with Some f -> f () | None -> ());
        let dur_ns = Telemetry.Clock.elapsed_ns ~since:t0 in
        Telemetry.Counter.add wait_counter (Int64.to_int !wait_ns);
        Telemetry.Span.record ~cat:"loop" ~tid:ctx.Team.tid ~name
          ~start_ns:t0 ~dur_ns
          ~args:
            [
              ("barrier_wait_ns", Int64.to_float !wait_ns);
              ("nthreads", float_of_int ctx.Team.nthreads);
            ]
          ())
  end

let exec_sequential t ~nthreads ~body =
  check_threads t nthreads;
  Team.run_sequential ~nthreads (fun ctx ->
      exec_on_ctx t ~ctx ~body:(fun ind -> body ~tid:ctx.Team.tid ind))

(** Loop-nest compilation: turns (logical loop declarations, parsed spec
    string) into an executable nest — the OCaml-native equivalent of the
    paper's JITed C++ loop function (Listing 2/3).

    Compilation validates the spec (RULE 1 blocking legality, RULE 2
    parallelization shape), resolves every occurrence to a loop level with
    its step and extent rule, and groups consecutive PAR-MODE 1 levels into
    collapse groups. Execution interprets the compiled levels with
    specialized closures; there is no per-iteration string inspection. *)

exception Invalid_spec of string

type t

(** [compile specs parsed] — raises {!Invalid_spec} on an illegal spec. *)
val compile : Loop_spec.t array -> Spec_parser.t -> t

(** Thread count the nest wants: R*C*L for PAR-MODE 2; [default] when
    PAR-MODE 1 parallelism is present; 1 for fully serial nests. *)
val required_threads : t -> default:int -> int

(** [Some (r*c*l)] for PAR-MODE 2 nests, [None] otherwise. *)
val grid_threads : t -> int option

(** [exec t ~nthreads ~init ~term ~body] runs the nest on a team.
    [init]/[term] run once per logical thread before/after the nest (as in
    Listing 2). [body] receives the logical index array (alphabetical
    order); the array is reused between invocations — do not retain.

    When the telemetry registry is enabled, each team thread records one
    [Telemetry.Span] (category ["loop"], named [label]) covering its whole
    traversal, with its barrier-wait time as a span argument and
    accumulated into the ["parlooper.barrier_wait_ns"] counter. With
    telemetry disabled the instrumentation costs one bool load per run. *)
val exec :
  ?label:string ->
  t ->
  nthreads:int ->
  init:(unit -> unit) option ->
  term:(unit -> unit) option ->
  body:(int array -> unit) ->
  unit

(** Like {!exec} but runs logical threads sequentially in tid order with
    deterministic dynamic scheduling; [body] also receives the thread id.
    Used for tracing by the performance model. *)
val exec_sequential :
  t -> nthreads:int -> body:(tid:int -> int array -> unit) -> unit

(** Number of logical loops (= length of the spec array). *)
val num_loops : t -> int

(** Total number of innermost body invocations across all threads. *)
val body_invocations : t -> int

type ctx = {
  tid : int;
  nthreads : int;
  barrier : unit -> unit;
  fetch_chunk : instance:int -> chunk:int -> int;
}

(* Pool observability. Counters are unconditional atomic bumps (same
   convention as the JIT-cache counters); the dispatch-latency histogram
   is fed only while the registry is enabled. *)
let spin_c = Telemetry.Counter.find_or_create Telemetry.Registry.pool_spin_name
let park_c = Telemetry.Counter.find_or_create Telemetry.Registry.pool_park_name

let reuse_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.pool_reuse_name

let dispatches_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.pool_dispatches_name

let spawned_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.pool_workers_name

let dispatch_h =
  Telemetry.Histogram.find_or_create Telemetry.Registry.pool_dispatch_ns_name

let trips_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.watchdog_trips_name

let quarantined_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.pool_quarantined_name

(* flight-recorder labels, interned once (never on the hot path) *)
let lbl_barrier = Telemetry.Recorder.intern "team.barrier"
let lbl_pool = Telemetry.Recorder.intern "team.pool"
let lbl_spawn = Telemetry.Recorder.intern "team.spawn"

(* ---- failure model ----

   A parallel region never loses an exception: every thread's failure is
   recorded under a lock and the caller re-raises them as one
   [Parallel_failure], tids ascending. [Worker_stalled] is synthesized by
   the watchdog for a pooled worker that accepted a job but did not
   finish within [abandon_s]; [Barrier_timeout] is raised out of a
   barrier wait that exceeded [abandon_s] (only when a watchdog is
   armed), so a region whose peer died before the barrier unwinds
   instead of deadlocking. *)

exception Parallel_failure of (int * exn) list
exception Worker_stalled of { tid : int; waited_s : float }
exception Barrier_timeout of { waited_s : float }

let () =
  Printexc.register_printer (function
    | Parallel_failure l ->
      Some
        (Printf.sprintf "Team.Parallel_failure [%s]"
           (String.concat "; "
              (List.map
                 (fun (tid, e) ->
                   Printf.sprintf "tid %d: %s" tid (Printexc.to_string e))
                 l)))
    | Worker_stalled { tid; waited_s } ->
      Some (Printf.sprintf "Team.Worker_stalled(tid=%d, waited=%.3fs)" tid waited_s)
    | Barrier_timeout { waited_s } ->
      Some (Printf.sprintf "Team.Barrier_timeout(waited=%.3fs)" waited_s)
    | _ -> None)

(* Watchdog over pooled dispatches and barrier waits. [None] (the
   default) keeps the exact spin-then-park fast path; arming it switches
   the caller's completion wait and all barrier parks to a polling wait
   that warns at [warn_s] (counter [watchdog.trips]) and recovers at
   [abandon_s]: never-started jobs are stolen and run inline by the
   caller, dead or wedged workers are quarantined out of the pool
   (respawned on the next dispatch), and stuck peers surface as
   [Worker_stalled] inside [Parallel_failure]. *)
type watchdog = { warn_s : float; abandon_s : float }

let watchdog_cfg : watchdog option ref = ref None
let set_watchdog w = watchdog_cfg := w
let current_watchdog () = !watchdog_cfg

(* Per-region failure aggregation. [any] keeps the happy path to a single
   atomic load; the list is only touched under the mutex on failure. *)
module Failures = struct
  type t = {
    m : Mutex.t;
    mutable l : (int * exn) list;
    any : bool Atomic.t;
  }

  let create () = { m = Mutex.create (); l = []; any = Atomic.make false }

  let record t tid e =
    Mutex.lock t.m;
    t.l <- (tid, e) :: t.l;
    Atomic.set t.any true;
    Mutex.unlock t.m

  let reset t =
    if Atomic.get t.any then begin
      Mutex.lock t.m;
      t.l <- [];
      Atomic.set t.any false;
      Mutex.unlock t.m
    end

  let any t = Atomic.get t.any

  let get t =
    Mutex.lock t.m;
    let l = t.l in
    Mutex.unlock t.m;
    List.sort (fun (a, _) (b, _) -> compare a b) l
end

(* Fault-injection sites (no-ops unless a Fault plan is installed):
   [team.worker.body] fires inside every logical thread's body — [Exn]
   models user-code failure, [Stall] a slow thread; [team.worker.loop]
   fires when a pooled worker picks up a job — [Exn] kills the worker
   thread itself, exercising steal + quarantine. *)
let body_site = Fault.site "team.worker.body"
let loop_site = Fault.site "team.worker.loop"

(* ---- hybrid spin-then-park waiting ----

   Spin briefly before parking on a condition variable, so back-to-back
   dispatches and barrier crossings cost no syscalls. The spin phase
   yields to the scheduler every few probes: when logical threads
   outnumber cores (systhreads multiplexed onto one domain's runtime
   lock), a pure cpu_relax spin would hold the domain until the
   preemption tick and starve the very thread it is waiting for. *)

let spin_limit = 256

let spin_until pred =
  pred ()
  ||
  let i = ref 0 in
  let hit = ref false in
  while (not !hit) && !i < spin_limit do
    if !i land 3 = 3 then Thread.yield () else Domain.cpu_relax ();
    incr i;
    hit := pred ()
  done;
  !hit

(* Sense-reversing barrier, safe across domains and systhreads. Arrival
   is a single fetch-and-add; waiters spin on the generation gate and
   fall back to a mutex/condvar park. The last arriver resets the arrival
   count *before* opening the gate, so threads racing into the next phase
   cannot observe a stale count. *)
module Barrier = struct
  type t = {
    total : int;
    arrived : int Atomic.t;
    generation : int Atomic.t;
    mutex : Mutex.t;
    cond : Condition.t;
  }

  let create total =
    {
      total;
      arrived = Atomic.make 0;
      generation = Atomic.make 0;
      mutex = Mutex.create ();
      cond = Condition.create ();
    }

  let wait t =
    if t.total > 1 then begin
      let gen = Atomic.get t.generation in
      let arrival = Atomic.fetch_and_add t.arrived 1 in
      Telemetry.Recorder.emit Telemetry.Recorder.Barrier_arrive
        ~label:lbl_barrier ~a:arrival ~b:gen;
      if arrival = t.total - 1 then begin
        Atomic.set t.arrived 0;
        Mutex.lock t.mutex;
        Atomic.incr t.generation;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex
      end
      else if spin_until (fun () -> Atomic.get t.generation <> gen) then
        Telemetry.Counter.incr spin_c
      else begin
        match !watchdog_cfg with
        | None ->
          Mutex.lock t.mutex;
          while Atomic.get t.generation = gen do
            Condition.wait t.cond t.mutex
          done;
          Mutex.unlock t.mutex;
          Telemetry.Counter.incr park_c
        | Some wd ->
          (* OCaml's Condition has no timed wait, so an armed watchdog
             polls: cheap enough off the fast path (the spin phase above
             already absorbed the common case) and it can give up *)
          let t0 = Telemetry.Clock.now_s () in
          let warned = ref false in
          while Atomic.get t.generation = gen do
            Thread.delay 50e-6;
            let waited = Telemetry.Clock.now_s () -. t0 in
            if (not !warned) && waited >= wd.warn_s then begin
              warned := true;
              Telemetry.Counter.incr trips_c
            end;
            if waited >= wd.abandon_s then
              raise (Barrier_timeout { waited_s = waited })
          done;
          Telemetry.Counter.incr park_c
      end
    end
end

(* Per-instance dynamic work-sharing counters. Work-sharing constructs are
   matched across threads by per-thread encounter order (like the OpenMP
   runtime), so the table is indexed by the instance number and grown on
   demand. The table itself is held in an Atomic: the fast path reads one
   consistent snapshot (never two reads that could straddle a concurrent
   replacement), and growers publish the new array with a single
   Atomic.set under the mutex. *)
module Counters = struct
  type t = {
    mutex : Mutex.t;
    table : int Atomic.t array Atomic.t;
  }

  let create () = { mutex = Mutex.create (); table = Atomic.make [||] }

  (* rewind all instance counters to zero so a pooled team can reuse the
     table across parallel regions (instances are numbered from 0 in every
     region). Only called between regions, when no worker is fetching. *)
  let reset t =
    Mutex.lock t.mutex;
    Array.iter (fun c -> Atomic.set c 0) (Atomic.get t.table);
    Mutex.unlock t.mutex

  let get t instance =
    let tbl = Atomic.get t.table in
    if instance < Array.length tbl then tbl.(instance)
    else begin
      Mutex.lock t.mutex;
      (* re-check under the lock: another domain may have grown it since *)
      let tbl = Atomic.get t.table in
      let n = Array.length tbl in
      let tbl =
        if instance < n then tbl
        else begin
          let fresh =
            Array.init (instance + 1) (fun i ->
                if i < n then tbl.(i) else Atomic.make 0)
          in
          Atomic.set t.table fresh;
          fresh
        end
      in
      let c = tbl.(instance) in
      Mutex.unlock t.mutex;
      c
    end

  let fetch t ~instance ~chunk = Atomic.fetch_and_add (get t instance) chunk
end

let domains_for n =
  let cores = Domain.recommended_domain_count () in
  max 1 (min n cores)

(* ---- shared team plumbing ---- *)

let make_ctx ~tid ~nthreads ~barrier ~counters =
  {
    tid;
    nthreads;
    barrier = (fun () -> Barrier.wait barrier);
    fetch_chunk = (fun ~instance ~chunk -> Counters.fetch counters ~instance ~chunk);
  }

let run_single f =
  f
    {
      tid = 0;
      nthreads = 1;
      barrier = (fun () -> ());
      fetch_chunk =
        (let counters = Counters.create () in
         fun ~instance ~chunk -> Counters.fetch counters ~instance ~chunk);
    }

(* ---- spawn-per-call execution (reference path) ----

   The original backend: fresh domains and systhreads per call. Kept as
   the fallback for nested/concurrent teams and as the baseline the
   dispatch-overhead benchmark compares the pool against. *)

let run_spawn ~nthreads f =
  assert (nthreads > 0);
  if nthreads = 1 then run_single f
  else begin
    let barrier = Barrier.create nthreads in
    let counters = Counters.create () in
    let failures = Failures.create () in
    let thread_body tid () =
      try
        (match Fault.fire body_site with _ -> ());
        f (make_ctx ~tid ~nthreads ~barrier ~counters)
      with e -> Failures.record failures tid e
    in
    let ndomains = domains_for nthreads in
    (* round-robin logical threads over domains; each domain runs its
       share as systhreads so barriers interleave correctly *)
    let domains =
      List.init (ndomains - 1) (fun d ->
          Domain.spawn (fun () ->
              let mine =
                List.init nthreads Fun.id
                |> List.filter (fun t -> t mod ndomains = d + 1)
              in
              let threads =
                List.map (fun tid -> Thread.create (thread_body tid) ()) mine
              in
              List.iter Thread.join threads))
    in
    (* domain 0 = current domain *)
    let mine =
      List.init nthreads Fun.id |> List.filter (fun t -> t mod ndomains = 0)
    in
    Telemetry.Recorder.emit Telemetry.Recorder.Pool_dispatch ~label:lbl_spawn
      ~a:nthreads ~b:ndomains;
    let threads = List.map (fun tid -> Thread.create (thread_body tid) ()) mine in
    List.iter Thread.join threads;
    List.iter Domain.join domains;
    if Failures.any failures then begin
      ignore
        (Telemetry.Recorder.post_mortem ~reason:"team.parallel_failure");
      raise (Parallel_failure (Failures.get failures))
    end
  end

(* ---- persistent worker pool ----

   Process-wide, created lazily on the first parallel team and resized on
   demand, never torn down (parked workers cost nothing and the runtime
   exits cleanly with parked domains). Topology: up to
   recommended_domain_count - 1 carrier domains (the caller's domain being
   the remaining participant); each worker is a systhread with a
   single-slot mailbox. On a single-core host there are no carriers at
   all: workers are systhreads in the dispatching thread's own domain,
   where a mailbox handoff is a cheap same-runtime-lock switch — waking a
   thread in another domain that has nothing else to run costs a full OS
   preemption tick, three orders of magnitude more.

   A team of n uses the calling thread as logical tid 0 and workers
   0..n-2 as tids 1..n-1, so dispatch is n-1 mailbox stores — no thread
   or domain creation on the hot path. Per-dispatch state (barrier,
   work-sharing counters, ctx records, job thunks) is cached in a [team]
   record and reused while the requested width stays the same, so a
   steady-state dispatch allocates almost nothing.

   [lock] is held by the dispatching thread for its entire parallel
   region. That serializes team execution (matching the one-OpenMP-team
   model of the paper's runtime); a nested or concurrent [run] simply
   fails the try_lock and falls back to [run_spawn], which is always
   correct. *)
module Pool = struct
  type mailbox = {
    flag : int Atomic.t;  (** 0 = idle, 1 = job ready *)
    mutable work : unit -> unit;  (** valid while [flag = 1] *)
    parked : bool Atomic.t;
    m : Mutex.t;
    cv : Condition.t;
    mutable jobs_run : int;  (** touched only by the owning worker *)
  }

  type carrier = {
    cm : Mutex.t;
    ccv : Condition.t;
    mutable pending : mailbox list;  (** workers awaiting spawn on this domain *)
  }

  (* reusable per-dispatch state, rebuilt only when the team width
     changes. [work] is published before the mailbox flags are raised
     (the Atomic.set in [submit] orders it) and read by workers after
     their acquire of the flag. *)
  type team = {
    nthreads : int;
    counters : Counters.t;
    ctxs : ctx array;
    mutable jobs : (unit -> unit) array;  (** index tid-1 *)
    (* per-job lifecycle, index tid-1: 0 = submitted, 1 = running on its
       worker, 2 = done, 3 = stolen by the caller's watchdog. The CAS
       0->1 (worker) vs 0->3 (stealer) race guarantees a job body runs
       exactly once even when a worker dies or wakes late. *)
    states : int Atomic.t array;
    remaining : int Atomic.t;
    caller_parked : bool Atomic.t;
    done_m : Mutex.t;
    done_cv : Condition.t;
    failures : Failures.t;
    started : int Atomic.t;
    mutable t0 : int64;  (** dispatch timestamp, valid when telemetry on *)
    mutable telem : bool;
    mutable work : ctx -> unit;
  }

  type t = {
    lock : Mutex.t;
    mutable workers : mailbox array;
    mutable carriers : carrier array;
    mutable team : team option;  (** cached; guarded by [lock] *)
  }

  let noop () = ()

  let make_mailbox () =
    {
      flag = Atomic.make 0;
      work = noop;
      parked = Atomic.make false;
      m = Mutex.create ();
      cv = Condition.create ();
      jobs_run = 0;
    }

  let rec worker_loop mb =
    (if spin_until (fun () -> Atomic.get mb.flag <> 0) then
       Telemetry.Counter.incr spin_c
     else begin
       Mutex.lock mb.m;
       Atomic.set mb.parked true;
       while Atomic.get mb.flag = 0 do
         Condition.wait mb.cv mb.m
       done;
       Atomic.set mb.parked false;
       Mutex.unlock mb.m;
       Telemetry.Counter.incr park_c
     end);
    let f = mb.work in
    Atomic.set mb.flag 0;
    if mb.jobs_run > 0 then Telemetry.Counter.incr reuse_c;
    mb.jobs_run <- mb.jobs_run + 1;
    Telemetry.Counter.incr dispatches_c;
    match Fault.fire loop_site with
    | exception Fault.Injected _ ->
      (* injected worker death: stop looping so the thread exits without
         running the job; the caller's watchdog steals it and quarantines
         this mailbox *)
      ()
    | _ ->
      (* jobs handle their own exceptions/completion; never kill the worker *)
      (try f () with _ -> ());
      worker_loop mb

  (* systhreads must be created from inside their domain, so each carrier
     domain runs a tiny control loop spawning the workers assigned to it *)
  let carrier_loop c () =
    Mutex.lock c.cm;
    while true do
      match c.pending with
      | mb :: rest ->
        c.pending <- rest;
        Mutex.unlock c.cm;
        ignore (Thread.create worker_loop mb);
        Mutex.lock c.cm
      | [] -> Condition.wait c.ccv c.cm
    done

  let pool =
    { lock = Mutex.create (); workers = [||]; carriers = [||]; team = None }

  let max_carriers = lazy (Domain.recommended_domain_count () - 1)

  (* grow to [n] workers; caller holds [pool.lock] *)
  let ensure n =
    let have = Array.length pool.workers in
    if n > have then begin
      let want_carriers = min n (Lazy.force max_carriers) in
      let nc = Array.length pool.carriers in
      if want_carriers > nc then begin
        let fresh =
          Array.init (want_carriers - nc) (fun _ ->
              let c =
                { cm = Mutex.create (); ccv = Condition.create (); pending = [] }
              in
              ignore (Domain.spawn (carrier_loop c));
              c)
        in
        pool.carriers <- Array.append pool.carriers fresh
      end;
      let ncar = Array.length pool.carriers in
      let fresh =
        Array.init (n - have) (fun i ->
            let mb = make_mailbox () in
            (if ncar = 0 then
               (* single-core host: worker lives in the caller's domain *)
               ignore (Thread.create worker_loop mb)
             else begin
               let c = pool.carriers.((have + i) mod ncar) in
               Mutex.lock c.cm;
               c.pending <- mb :: c.pending;
               Condition.signal c.ccv;
               Mutex.unlock c.cm
             end);
            Telemetry.Counter.incr spawned_c;
            mb)
      in
      pool.workers <- Array.append pool.workers fresh
    end

  let submit (mb : mailbox) f =
    mb.work <- f;
    Atomic.set mb.flag 1;
    if Atomic.get mb.parked then begin
      Mutex.lock mb.m;
      Condition.signal mb.cv;
      Mutex.unlock mb.m
    end

  let make_team nthreads =
    let barrier = Barrier.create nthreads in
    let counters = Counters.create () in
    let tm =
      {
        nthreads;
        counters;
        ctxs =
          Array.init nthreads (fun tid ->
              make_ctx ~tid ~nthreads ~barrier ~counters);
        jobs = [||];
        states = Array.init (nthreads - 1) (fun _ -> Atomic.make 0);
        remaining = Atomic.make 0;
        caller_parked = Atomic.make false;
        done_m = Mutex.create ();
        done_cv = Condition.create ();
        failures = Failures.create ();
        started = Atomic.make 0;
        t0 = 0L;
        telem = false;
        work = ignore;
      }
    in
    let job tid () =
      (* a worker that lost the claim race was pre-empted by the
         watchdog's steal; the stealer already ran the body and
         decremented [remaining], so do nothing *)
      if Atomic.compare_and_set tm.states.(tid - 1) 0 1 then begin
        if tm.telem && Atomic.fetch_and_add tm.started 1 = nthreads - 2 then
          Telemetry.Histogram.observe dispatch_h
            (Int64.to_float (Telemetry.Clock.elapsed_ns ~since:tm.t0));
        (try
           (match Fault.fire body_site with _ -> ());
           tm.work tm.ctxs.(tid)
         with e -> Failures.record tm.failures tid e);
        Atomic.set tm.states.(tid - 1) 2;
        if
          Atomic.fetch_and_add tm.remaining (-1) = 1
          && Atomic.get tm.caller_parked
        then begin
          Mutex.lock tm.done_m;
          Condition.broadcast tm.done_cv;
          Mutex.unlock tm.done_m
        end
      end
    in
    tm.jobs <- Array.init (nthreads - 1) (fun i -> job (i + 1));
    tm

  (* caller holds [pool.lock] *)
  let team_for nthreads =
    match pool.team with
    | Some tm when tm.nthreads = nthreads -> tm
    | _ ->
      let tm = make_team nthreads in
      pool.team <- Some tm;
      tm

  (* drop worker mailboxes [idxs] from the pool; caller holds
     [pool.lock]. A quarantined worker that is merely slow (rather than
     dead) parks forever on its now-orphaned mailbox — it can never
     double-run a job because the per-job CAS already failed. Replacement
     workers are respawned by [ensure] on the next dispatch. *)
  let quarantine idxs =
    match idxs with
    | [] -> ()
    | _ ->
      let keep = ref [] in
      Array.iteri
        (fun i mb -> if not (List.mem i idxs) then keep := mb :: !keep)
        pool.workers;
      pool.workers <- Array.of_list (List.rev !keep);
      pool.team <- None;
      List.iter (fun _ -> Telemetry.Counter.incr quarantined_c) idxs

  (* watchdog-armed completion wait: poll [remaining]; at [warn_s] count
     a trip, at [abandon_s] recover — steal never-started jobs (running
     them inline on the caller), then quarantine workers that are dead
     (mailbox still flagged) or wedged mid-job (state 1). Stuck peers are
     reported as [Worker_stalled]; their late completion only touches
     this (now detached) team record, which is benign. *)
  let watchdog_wait tm (wd : watchdog) =
    let t0 = Telemetry.Clock.now_s () in
    let warned = ref false in
    let abandoned = ref false in
    while (not !abandoned) && Atomic.get tm.remaining > 0 do
      Thread.delay 100e-6;
      let waited = Telemetry.Clock.now_s () -. t0 in
      if (not !warned) && waited >= wd.warn_s then begin
        warned := true;
        Telemetry.Counter.incr trips_c
      end;
      if waited >= wd.abandon_s then begin
        abandoned := true;
        Array.iteri
          (fun i st ->
            if Atomic.compare_and_set st 0 3 then begin
              (try
                 (match Fault.fire body_site with _ -> ());
                 tm.work tm.ctxs.(i + 1)
               with e -> Failures.record tm.failures (i + 1) e);
              ignore (Atomic.fetch_and_add tm.remaining (-1))
            end)
          tm.states;
        let bad = ref [] in
        Array.iteri
          (fun i st ->
            if i < Array.length pool.workers then begin
              let stuck = Atomic.get st = 1 in
              if stuck then
                Failures.record tm.failures (i + 1)
                  (Worker_stalled { tid = i + 1; waited_s = waited });
              if stuck || Atomic.get pool.workers.(i).flag <> 0 then
                bad := i :: !bad
            end)
          tm.states;
        quarantine (List.rev !bad)
      end
    done

  let size () =
    Mutex.lock pool.lock;
    let n = Array.length pool.workers in
    Mutex.unlock pool.lock;
    n
end

let pool_size () = Pool.size ()

let pool_on = ref (Sys.getenv_opt "PARLOOPER_POOL" <> Some "0")
let pool_enabled () = !pool_on
let set_pool_enabled b = pool_on := b

(* caller holds the pool lock; caller executes tid 0 itself *)
let run_pooled ~nthreads f =
  Pool.ensure (nthreads - 1);
  let tm = Pool.team_for nthreads in
  Counters.reset tm.Pool.counters;
  Failures.reset tm.Pool.failures;
  Array.iter (fun st -> Atomic.set st 0) tm.Pool.states;
  Atomic.set tm.Pool.remaining (nthreads - 1);
  tm.Pool.work <- f;
  let telem = Telemetry.Registry.enabled () in
  tm.Pool.telem <- telem;
  if telem then begin
    Atomic.set tm.Pool.started 0;
    tm.Pool.t0 <- Telemetry.Clock.now_ns ()
  end;
  Telemetry.Recorder.emit Telemetry.Recorder.Pool_dispatch ~label:lbl_pool
    ~a:nthreads ~b:(Array.length Pool.pool.workers);
  for tid = 1 to nthreads - 1 do
    Pool.submit Pool.pool.workers.(tid - 1) tm.Pool.jobs.(tid - 1)
  done;
  (try
     (match Fault.fire body_site with _ -> ());
     f tm.Pool.ctxs.(0)
   with e -> Failures.record tm.Pool.failures 0 e);
  (if spin_until (fun () -> Atomic.get tm.Pool.remaining = 0) then
     Telemetry.Counter.incr spin_c
   else
     match !watchdog_cfg with
     | Some wd -> Pool.watchdog_wait tm wd
     | None ->
       Mutex.lock tm.Pool.done_m;
       Atomic.set tm.Pool.caller_parked true;
       while Atomic.get tm.Pool.remaining > 0 do
         Condition.wait tm.Pool.done_cv tm.Pool.done_m
       done;
       Atomic.set tm.Pool.caller_parked false;
       Mutex.unlock tm.Pool.done_m;
       Telemetry.Counter.incr park_c);
  tm.Pool.work <- ignore;
  if Failures.any tm.Pool.failures then begin
    (* a failed region may leave barrier/job state inconsistent (timed-out
       barrier waiters, stuck workers): rebuild per-dispatch state *)
    Pool.pool.team <- None;
    ignore (Telemetry.Recorder.post_mortem ~reason:"team.parallel_failure");
    raise (Parallel_failure (Failures.get tm.Pool.failures))
  end

let run ~nthreads f =
  assert (nthreads > 0);
  if nthreads = 1 then run_single f
  else if !pool_on && Mutex.try_lock Pool.pool.lock then (
    match run_pooled ~nthreads f with
    | () -> Mutex.unlock Pool.pool.lock
    | exception e ->
      Mutex.unlock Pool.pool.lock;
      raise e)
  else
    (* pool disabled, or a team is already active (nested / concurrent
       parallel region): spawning preserves full generality *)
    run_spawn ~nthreads f

let run_sequential ~nthreads f =
  assert (nthreads > 0);
  (* deterministic round-robin dynamic assignment: per-(instance, tid)
     private counters stepping by nthreads*chunk *)
  for tid = 0 to nthreads - 1 do
    let local : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
    let fetch_chunk ~instance ~chunk =
      let r =
        match Hashtbl.find_opt local instance with
        | Some r -> r
        | None ->
          let r = ref (tid * chunk) in
          Hashtbl.replace local instance r;
          r
      in
      let v = !r in
      r := v + (nthreads * chunk);
      v
    in
    f { tid; nthreads; barrier = (fun () -> ()); fetch_chunk }
  done

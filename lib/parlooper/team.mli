(** Thread-team runtime — the concurrency substrate PARLOOPER generates
    loops for (the paper's POC uses OpenMP; the back-end is designed to be
    swappable, §II-B).

    A team of [nthreads] logical threads executes a function in SPMD style,
    like an [omp parallel] region. Teams are served by a process-wide
    persistent worker pool (worker systhreads hosted on carrier domains —
    or on the dispatcher's own domain when the host has a single core —
    created lazily and resized on demand, each with a single-slot mailbox
    and hybrid spin-then-park waiting), so entering a parallel region
    costs mailbox stores, not thread/domain creation — the property that
    lets OpenMP amortize thread management across a persistent team. The
    calling thread participates as logical tid 0. Nested or concurrent
    teams fall back transparently to spawn-per-call execution. *)

type ctx = {
  tid : int;  (** logical thread id, 0-based *)
  nthreads : int;
  barrier : unit -> unit;  (** team-wide barrier *)
  fetch_chunk : instance:int -> chunk:int -> int;
      (** dynamic work-sharing: atomically claim the next [chunk]-sized
          range start for work-sharing construct number [instance] (the
          per-thread encounter index); returns the claimed start. *)
}

(** All exceptions raised inside a parallel region, as [(tid, exn)]
    sorted by tid — none are lost; the region always joins every thread
    (or steals/abandons it via the watchdog) before raising. *)
exception Parallel_failure of (int * exn) list

(** A pooled worker accepted a job but made no progress for the
    watchdog's [abandon_s] budget; its job was stolen and executed by the
    caller, and the worker was quarantined out of the pool. *)
exception Worker_stalled of { tid : int; waited_s : float }

(** A barrier wait exceeded the watchdog's [abandon_s] budget —
    typically because a teammate died and will never arrive. *)
exception Barrier_timeout of { waited_s : float }

(** Liveness watchdog for pooled regions and barriers: after [warn_s]
    seconds of no progress the [watchdog.trips] counter increments; after
    [abandon_s] seconds unstarted jobs are stolen (run by the caller),
    non-responding workers are quarantined (counter [pool.quarantined])
    and the region raises {!Parallel_failure}. [None] (the default)
    disables the watchdog: waiting uses condvar parking with no timeout
    and zero polling overhead. *)
type watchdog = { warn_s : float; abandon_s : float }

val set_watchdog : watchdog option -> unit
val current_watchdog : unit -> watchdog option

(** [run ~nthreads f] executes [f ctx] on every logical thread and waits
    for all of them. Exceptions raised by any thread are aggregated and
    re-raised as {!Parallel_failure} after the team finishes; a raising
    worker returns to the pool and stays usable. *)
val run : nthreads:int -> (ctx -> unit) -> unit

(** Spawn-per-call execution: fresh domains and systhreads for this team
    only. Same semantics as {!run}. This is the fallback used for nested
    and concurrent teams, and the baseline the dispatch-overhead
    benchmark measures the pool against. *)
val run_spawn : nthreads:int -> (ctx -> unit) -> unit

(** Sequential "trace" execution: runs logical threads one after another
    (tid order) with barriers as no-ops and [fetch_chunk] replaced by a
    deterministic round-robin assignment. Used by the performance model to
    extract per-thread access traces without timing effects. *)
val run_sequential : nthreads:int -> (ctx -> unit) -> unit

(** Number of physical domains {!run_spawn} will use for a team of [n]. *)
val domains_for : int -> int

(** Current number of live pool workers (grows monotonically with the
    largest team seen; the pool persists for the process lifetime). *)
val pool_size : unit -> int

(** Pool kill-switch, e.g. for A/B measurements: with the pool disabled
    every {!run} behaves as {!run_spawn}. Defaults to enabled; the
    environment variable [PARLOOPER_POOL=0] disables it at startup. *)
val pool_enabled : unit -> bool

val set_pool_enabled : bool -> unit

type grid_axis = R | C | L

type occurrence = {
  loop : int;
  parallel : bool;
  grid : (grid_axis * int) option;
  barrier_after : bool;
}

type schedule = Static | Dynamic of int

type t = {
  occurrences : occurrence list;
  schedule : schedule;
  directives : string option;
}

type error = { pos : int; reason : string }

exception Parse_error of string

let error_to_string e =
  Printf.sprintf "%s (at position %d)" e.reason e.pos

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* internal: positioned failure, converted to [Error] by [parse_result] *)
exception Err of error

let fail_at pos fmt =
  Printf.ksprintf (fun s -> raise (Err { pos; reason = s })) fmt

let parse_directives ~pos tail =
  let tail = String.trim tail in
  let sched =
    (* recognize schedule(dynamic[, chunk]) / schedule(static) *)
    let lower = String.lowercase_ascii tail in
    match String.index_opt lower '(' with
    | Some i when String.length lower >= 8 && String.sub lower 0 8 = "schedule"
      -> begin
      match String.index_opt lower ')' with
      | None -> fail_at pos "unterminated schedule directive: %s" tail
      | Some j ->
        let args = String.sub lower (i + 1) (j - i - 1) in
        let parts =
          String.split_on_char ',' args |> List.map String.trim
        in
        (match parts with
        | [ "static" ] -> Static
        | [ "dynamic" ] -> Dynamic 1
        | [ "dynamic"; c ] -> (
          match int_of_string_opt c with
          | Some n when n > 0 -> Dynamic n
          | _ -> fail_at pos "bad dynamic chunk %S" c)
        | _ -> fail_at pos "unsupported schedule clause %S" args)
    end
    | _ -> Static
  in
  (sched, if tail = "" then None else Some tail)

let parse_exn s =
  let n = String.length s in
  let occurrences = ref [] in
  let push o = occurrences := o :: !occurrences in
  let set_barrier pos =
    match !occurrences with
    | [] -> fail_at pos "'|' before any loop character"
    | o :: rest -> occurrences := { o with barrier_after = true } :: rest
  in
  let schedule = ref Static in
  let directives = ref None in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '@' then begin
      let sched, dirs =
        parse_directives ~pos:(!i + 1) (String.sub s (!i + 1) (n - !i - 1))
      in
      schedule := sched;
      directives := dirs;
      stop := true
    end
    else if c = '|' then begin
      set_barrier !i;
      incr i
    end
    else if c >= 'a' && c <= 'z' then begin
      push
        {
          loop = Char.code c - Char.code 'a';
          parallel = false;
          grid = None;
          barrier_after = false;
        };
      incr i
    end
    else if c >= 'A' && c <= 'Z' then begin
      let loop = Char.code c - Char.code 'A' in
      incr i;
      (* optional {R:n} / {C:n} / {L:n} *)
      let grid =
        if !i < n && s.[!i] = '{' then begin
          match String.index_from_opt s !i '}' with
          | None -> fail_at !i "unterminated '{' in spec string"
          | Some j ->
            let body = String.sub s (!i + 1) (j - !i - 1) in
            i := j + 1;
            (match String.split_on_char ':' body |> List.map String.trim with
            | [ axis; ways ] ->
              let axis =
                match String.uppercase_ascii axis with
                | "R" -> R
                | "C" -> C
                | "L" -> L
                | _ -> fail_at !i "unknown grid axis %S" axis
              in
              (match int_of_string_opt ways with
              | Some w when w > 0 -> Some (axis, w)
              | _ -> fail_at !i "bad grid ways %S" ways)
            | _ -> fail_at !i "bad grid annotation {%s}" body)
        end
        else None
      in
      push { loop; parallel = true; grid; barrier_after = false }
    end
    else fail_at !i "unexpected character %C in spec string" c
  done;
  let occurrences = List.rev !occurrences in
  if occurrences = [] then fail_at 0 "empty spec string";
  { occurrences; schedule = !schedule; directives = !directives }

(* structured entry point: malformed input comes back as a positioned
   [Error] value instead of an exception escaping the nest machinery *)
let parse_result s = match parse_exn s with
  | t -> Ok t
  | exception Err e -> Error e

let parse s =
  match parse_result s with
  | Ok t -> t
  | Error e -> raise (Parse_error (error_to_string e))

let occurrence_count t l =
  List.length (List.filter (fun o -> o.loop = l) t.occurrences)

let num_loops_used t =
  1 + List.fold_left (fun m o -> max m o.loop) (-1) t.occurrences

let grid_shape t =
  let get axis =
    List.fold_left
      (fun acc o ->
        match o.grid with
        | Some (a, w) when a = axis -> (
          match acc with
          | None -> Some w
          | Some w' when w' = w -> acc
          | Some w' ->
            fail "grid axis annotated with conflicting ways %d and %d" w' w)
        | _ -> acc)
      None t.occurrences
  in
  let v = function None -> 1 | Some w -> w in
  (v (get R), v (get C), v (get L))

let has_grid t = List.exists (fun o -> o.grid <> None) t.occurrences

let to_string t =
  let buf = Buffer.create 32 in
  List.iter
    (fun o ->
      let c =
        Char.chr
          (o.loop + if o.parallel then Char.code 'A' else Char.code 'a')
      in
      Buffer.add_char buf c;
      (match o.grid with
      | Some (axis, w) ->
        Buffer.add_string buf
          (Printf.sprintf "{%s:%d}"
             (match axis with R -> "R" | C -> "C" | L -> "L")
             w)
      | None -> ());
      if o.barrier_after then Buffer.add_char buf '|')
    t.occurrences;
  (match t.directives with
  | Some d ->
    Buffer.add_string buf " @ ";
    Buffer.add_string buf d
  | None -> ());
  Buffer.contents buf

(** The PARLOOPER user API — the OCaml counterpart of the paper's
    [ThreadedLoop<N>] (Listing 1).

    {[
      let gemm_loop =
        Threaded_loop.create
          [ Loop_spec.make ~bound:kb ~step:k_step ();       (* loop a *)
            Loop_spec.make ~bound:mb ~step:m_step ();       (* loop b *)
            Loop_spec.make ~bound:nb ~step:n_step () ]      (* loop c *)
          "bcaBCb"
      in
      Threaded_loop.run gemm_loop ~nthreads:16 (fun ind ->
          let ik = ind.(0) and im = ind.(1) and in_ = ind.(2) in
          ...)
    ]}

    [create] validates and compiles the requested instantiation — or
    returns it from the JIT cache when the same (loops, spec string) pair
    was compiled before, mirroring the paper's cached JIT of loop nests. *)

type t

exception Invalid_spec of string
(** Raised by {!create} for illegal spec strings (RULE 1 / RULE 2
    violations, undeclared loops, missing blocking steps). *)

(** [create specs spec_string] — [specs.(0)] is logical loop [a], etc. *)
val create : Loop_spec.t list -> string -> t

val spec_string : t -> string
val specs : t -> Loop_spec.t array

(** [run ?nthreads ?init ?term t body]:
    - PAR-MODE 2 strings fix the team size to R*C*L ([nthreads], if given,
      must agree);
    - PAR-MODE 1 strings use [nthreads] (default: the machine's
      recommended domain count);
    - serial strings run on one thread.
    [init]/[term] run once per team thread before/after the nest.
    [body] receives the logical indices in alphabetical order; the array
    is reused — copy it if you must retain it. *)
val run :
  ?nthreads:int ->
  ?init:(unit -> unit) ->
  ?term:(unit -> unit) ->
  t ->
  (int array -> unit) ->
  unit

(** Team size [run] would use. *)
val threads_used : ?nthreads:int -> t -> int

(** Deterministic sequential execution exposing the thread id; used for
    tracing and in tests (identical iteration assignment to [run] with
    static scheduling; dynamic scheduling becomes round-robin). *)
val run_traced : ?nthreads:int -> t -> (tid:int -> int array -> unit) -> unit

(** Total body invocations [run] will perform (all threads together). *)
val body_invocations : t -> int

(** JIT-cache statistics: (hits, misses) since start/clear. The same
    numbers are published as the telemetry counters
    ["parlooper.jit.hits"] / ["parlooper.jit.misses"], alongside
    ["parlooper.jit.evictions"] and ["parlooper.jit.compile_ns"]. *)
val cache_stats : unit -> int * int

val cache_clear : unit -> unit

(** The JIT cache is a bounded LRU (default capacity 512 compiled nests)
    so unbounded spec sweeps — e.g. long autotuning runs — cannot grow it
    without limit. Shrinking the capacity evicts immediately. *)
val cache_set_capacity : int -> unit

val cache_get_capacity : unit -> int

(** Number of compiled nests currently cached. *)
val cache_size : unit -> int

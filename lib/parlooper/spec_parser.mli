(** Parser for the [loop_spec_string] runtime knob (§II-B).

    Grammar (whitespace ignored):
    - a lowercase letter [a]..[z] names a logical loop occurrence (RULE 1:
      order = nesting order, repetition = blocking);
    - an UPPERCASE letter requests parallelization of that occurrence
      (RULE 2); consecutive uppercase letters form an OpenMP-style
      [collapse] group (PAR-MODE 1);
    - an uppercase letter followed by [{R:n}], [{C:n}] or [{L:n}] requests
      an explicit n-way split on the corresponding axis of a logical thread
      grid (PAR-MODE 2);
    - [|] after an occurrence requests a team barrier each time that loop
      level completes;
    - [@] terminates the loop list; the remainder is an OpenMP-like
      directive tail, of which [schedule(dynamic[,chunk])] and
      [schedule(static)] are recognized. *)

type grid_axis = R | C | L

type occurrence = {
  loop : int;  (** 0 for 'a', 1 for 'b', ... *)
  parallel : bool;
  grid : (grid_axis * int) option;  (** PAR-MODE 2 annotation *)
  barrier_after : bool;
}

type schedule = Static | Dynamic of int  (** chunk size *)

type t = {
  occurrences : occurrence list;  (** outermost first *)
  schedule : schedule;
  directives : string option;  (** raw tail after '@', for display *)
}

(** A positioned parse failure: [pos] is the 0-based character offset in
    the spec string (for directive-tail errors, the offset of the tail). *)
type error = { pos : int; reason : string }

exception Parse_error of string

val error_to_string : error -> string

(** Structured parse: malformed input returns [Error] with position and
    reason instead of raising. *)
val parse_result : string -> (t, error) result

(** Parse; raises {!Parse_error} (carrying the rendered {!error}) on
    malformed input. *)
val parse : string -> t

(** Number of occurrences of logical loop [l]. *)
val occurrence_count : t -> int -> int

(** Highest loop id mentioned + 1. *)
val num_loops_used : t -> int

(** Thread-grid shape (R, C, L ways; 1 where absent). Raises
    {!Parse_error} if an axis is annotated twice with different ways. *)
val grid_shape : t -> int * int * int

(** True if any PAR-MODE 2 annotation is present. *)
val has_grid : t -> bool

(** Render back to a canonical spec string (for cache keys and display). *)
val to_string : t -> string

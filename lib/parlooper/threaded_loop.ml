exception Invalid_spec of string

type t = {
  specs : Loop_spec.t array;
  spec_string : string;
  nest : Nest.t;
}

(* ---- JIT cache ----

   Bounded LRU keyed by (specs, spec_string). Hit/miss/eviction counts and
   cumulative compile time are published as telemetry counters so the
   registry report can show cache behaviour; [cache_stats]/[cache_clear]
   keep their historical semantics on top of those counters. The bound
   keeps long autotuning sweeps (thousands of distinct spec strings) from
   growing the table without limit. *)

type cache_entry = { entry : t; mutable last_use : int }

let cache : (string, cache_entry) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()
let cache_tick = ref 0
let cache_capacity = ref 512
let hits_c = Telemetry.Counter.find_or_create Telemetry.Registry.jit_hits_name

let misses_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.jit_misses_name

let evictions_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.jit_evictions_name

let compile_ns_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.jit_compile_ns_name

let cache_key specs spec_string =
  String.concat ";" (List.map Loop_spec.to_string specs) ^ "|" ^ spec_string

let compile specs_list spec_string =
  let specs = Array.of_list specs_list in
  let parsed =
    match Spec_parser.parse_result spec_string with
    | Ok p -> p
    | Error e ->
      raise
        (Invalid_spec
           (Printf.sprintf "%S: %s" spec_string (Spec_parser.error_to_string e)))
  in
  let nest =
    try Nest.compile specs parsed
    with Nest.Invalid_spec m -> raise (Invalid_spec m)
  in
  { specs; spec_string; nest }

(* assumes [cache_lock] held: drop the least recently used entry *)
let evict_one_locked () =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.last_use -> ()
      | _ -> victim := Some (key, e.last_use))
    cache;
  match !victim with
  | Some (key, _) ->
    Hashtbl.remove cache key;
    Telemetry.Counter.incr evictions_c
  | None -> ()

let cache_set_capacity n =
  Mutex.lock cache_lock;
  cache_capacity := max 1 n;
  while Hashtbl.length cache > !cache_capacity do
    evict_one_locked ()
  done;
  Mutex.unlock cache_lock

let cache_get_capacity () = !cache_capacity

let cache_size () =
  Mutex.lock cache_lock;
  let n = Hashtbl.length cache in
  Mutex.unlock cache_lock;
  n

(* fault site modelling a JIT/dispatch failure (LIBXSMM returning a null
   kernel pointer): fires before the cache is consulted, so a failed
   dispatch leaves no broken entry behind and the next attempt is clean *)
let jit_site = Fault.site "parlooper.jit.compile"

let create specs_list spec_string =
  (match Fault.fire jit_site with _ -> ());
  let key = cache_key specs_list spec_string in
  Mutex.lock cache_lock;
  incr cache_tick;
  let now = !cache_tick in
  match Hashtbl.find_opt cache key with
  | Some e ->
    e.last_use <- now;
    Telemetry.Counter.incr hits_c;
    Mutex.unlock cache_lock;
    e.entry
  | None ->
    Mutex.unlock cache_lock;
    (* compile outside the lock; racing duplicates are harmless *)
    let t0 = Telemetry.Clock.now_ns () in
    let t = compile specs_list spec_string in
    let compile_ns = Int64.to_int (Telemetry.Clock.elapsed_ns ~since:t0) in
    Telemetry.Counter.add compile_ns_c compile_ns;
    (* cold path: interning the spec string here is fine *)
    Telemetry.Recorder.emit Telemetry.Recorder.Jit_compile
      ~label:(Telemetry.Recorder.intern spec_string)
      ~a:compile_ns ~b:(List.length specs_list);
    Mutex.lock cache_lock;
    (match Hashtbl.find_opt cache key with
    | Some e ->
      e.last_use <- now;
      Telemetry.Counter.incr hits_c
    | None ->
      Telemetry.Counter.incr misses_c;
      while Hashtbl.length cache >= !cache_capacity do
        evict_one_locked ()
      done;
      Hashtbl.replace cache key { entry = t; last_use = now });
    Mutex.unlock cache_lock;
    t

let spec_string t = t.spec_string
let specs t = Array.copy t.specs

let default_threads () = Domain.recommended_domain_count ()

let threads_used ?nthreads t =
  let default = match nthreads with Some n -> n | None -> default_threads () in
  Nest.required_threads t.nest ~default

let run ?nthreads ?init ?term t body =
  let n = threads_used ?nthreads t in
  (* a serial spec just runs serially whatever team size was offered; an
     explicit thread count only conflicts with a PAR-MODE 2 grid *)
  (match (nthreads, Nest.grid_threads t.nest) with
  | Some m, Some g when m <> g ->
    raise
      (Invalid_spec
         (Printf.sprintf "spec %S requires %d threads but %d were requested"
            t.spec_string g m))
  | _ -> ());
  Nest.exec ~label:t.spec_string t.nest ~nthreads:n ~init ~term ~body

let run_traced ?nthreads t body =
  let n = threads_used ?nthreads t in
  Nest.exec_sequential t.nest ~nthreads:n ~body

let body_invocations t = Nest.body_invocations t.nest

let cache_stats () =
  (Telemetry.Counter.get hits_c, Telemetry.Counter.get misses_c)

let cache_clear () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  Telemetry.Counter.set hits_c 0;
  Telemetry.Counter.set misses_c 0;
  Telemetry.Counter.set evictions_c 0;
  Telemetry.Counter.set compile_ns_c 0;
  Mutex.unlock cache_lock

(* Command-line front-end for the PARLOOPER/TPP library:

     parlooper gemm  -m 512 -n 512 -k 512 --spec BCa --threads 4
     parlooper gemm  -m 512 -n 512 -k 512 --spec BCa --trace out.json
     parlooper tune  -m 512 -n 512 -k 512 --platform spr --candidates 200
     parlooper model -m 2048 -n 2048 -k 2048 --spec BCa --platform zen4
     parlooper platforms

   --trace writes a Chrome trace_event JSON (open in chrome://tracing or
   ui.perfetto.dev) with one span per team thread per loop nest;
   --telemetry prints the registry report (achieved GFLOPS, JIT-cache
   behaviour, perf-model deviation) without writing a trace file. *)

open Cmdliner

let dtype_of_string = function
  | "f32" -> Datatype.F32
  | "bf16" -> Datatype.BF16
  | s -> invalid_arg ("unknown dtype " ^ s)

let m_arg = Arg.(value & opt int 512 & info [ "m" ] ~doc:"GEMM M dimension")
let n_arg = Arg.(value & opt int 512 & info [ "n" ] ~doc:"GEMM N dimension")
let k_arg = Arg.(value & opt int 512 & info [ "k" ] ~doc:"GEMM K dimension")

let block_arg =
  Arg.(value & opt int 32 & info [ "block" ] ~doc:"bm = bn = bk block size")

let spec_arg =
  Arg.(
    value & opt string "BCa"
    & info [ "spec" ] ~doc:"loop_spec_string (e.g. 'BCa', 'bcaBCb')")

let threads_arg =
  Arg.(value & opt int 4 & info [ "threads" ] ~doc:"team size")

let dtype_arg =
  Arg.(value & opt string "f32" & info [ "dtype" ] ~doc:"f32 or bf16")

let platform_arg =
  Arg.(
    value & opt string "spr"
    & info [ "platform" ] ~doc:"spr | gvt3 | zen4 | adl | host")

let candidates_arg =
  Arg.(value & opt int 200 & info [ "candidates" ] ~doc:"tuning candidates")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:"write a Chrome trace_event JSON timeline to $(docv)"
        ~docv:"FILE")

let telemetry_arg =
  Arg.(
    value & flag
    & info [ "telemetry" ]
        ~doc:"collect runtime telemetry and print the registry report")

let make_cfg m n k block dtype =
  Gemm.make_config ~bm:block ~bn:block ~bk:block
    ~dtype:(dtype_of_string dtype) ~m ~n ~k ()

let gemm_run m n k block spec threads dtype trace telemetry =
  let cfg = make_cfg m n k block dtype in
  let traced = telemetry || trace <> None in
  if traced then begin
    Telemetry.Registry.reset ();
    Telemetry.Registry.enable ()
  end;
  let g = Gemm.create cfg spec in
  let rng = Prng.create 1 in
  let a = Tensor.create (dtype_of_string dtype) [| m; k |] in
  let b = Tensor.create (dtype_of_string dtype) [| k; n |] in
  Tensor.fill_random a rng ~scale:1.0;
  Tensor.fill_random b rng ~scale:1.0;
  let t0 = Telemetry.Clock.now_s () in
  let c = Gemm.run_logical ~nthreads:threads g ~a ~b in
  let dt = Telemetry.Clock.now_s () -. t0 in
  let ok = Tensor.approx_equal ~tol:1e-3 c (Reference.matmul a b) in
  let measured_gflops = Gemm.flops cfg /. dt /. 1e9 in
  Printf.printf "%dx%dx%d %s spec=%s threads=%d: %.2f GFLOPS, correct=%b\n" m
    k n dtype spec threads measured_gflops ok;
  if traced then begin
    (* confront the §II-E model (host platform) with this measurement *)
    let host = Platform.host in
    (try
       let predicted =
         (Gemm_trace.score ~platform:host ~nthreads:threads cfg spec)
           .Perf_model.gflops
       in
       Telemetry.Registry.record_prediction
         ~name:(Printf.sprintf "gemm %dx%dx%d %s" m n k spec)
         ~predicted_gflops:predicted ~measured_gflops
     with _ -> ());
    Telemetry.Registry.disable ();
    Telemetry.Report.print
      ~peak_gflops:
        (Platform.peak_gflops
           ~cores:(min threads (Platform.cores host))
           host (dtype_of_string dtype))
      ~mem_bw_gbs:host.Platform.mem_bw_gbs ();
    match trace with
    | Some path -> (
      try
        Telemetry.Chrome_trace.write path;
        Printf.printf "trace written to %s (open in chrome://tracing)\n" path
      with Sys_error msg ->
        Printf.eprintf "cannot write trace: %s\n" msg;
        exit 1)
    | None -> ()
  end;
  if not ok then exit 1

let tune m n k block dtype platform candidates =
  match Platform.by_name platform with
  | None ->
    Printf.eprintf "unknown platform %s\n" platform;
    exit 1
  | Some p ->
    let cfg = make_cfg m n k block dtype in
    let report =
      Autotune.tune_gemm ~max_candidates:candidates
        (Autotune.Modeled { platform = p; nthreads = Platform.cores p })
        cfg
    in
    Printf.printf "evaluated %d instantiations in %.2fs; top 10 for %s:\n"
      report.Autotune.evaluated report.Autotune.tuning_seconds
      p.Platform.name;
    List.iteri
      (fun i e ->
        if i < 10 then
          Printf.printf "  #%-2d %-16s %10.0f GFLOPS (modeled)\n" (i + 1)
            e.Autotune.spec e.Autotune.gflops)
      report.Autotune.ranked

let model m n k block dtype platform spec threads =
  match Platform.by_name platform with
  | None ->
    Printf.eprintf "unknown platform %s\n" platform;
    exit 1
  | Some p ->
    let cfg = make_cfg m n k block dtype in
    let r = Gemm_trace.score ~platform:p ~nthreads:threads cfg spec in
    Printf.printf
      "%s on %s with %d threads: %.0f GFLOPS modeled (%.0f%% compute-bound \
       invocations, %.1f MB DRAM reads)\n"
      spec p.Platform.name threads r.Perf_model.gflops
      (100.0 *. r.Perf_model.compute_bound_fraction)
      (r.Perf_model.mem_read_bytes /. 1e6)

let platforms () =
  List.iter
    (fun (p : Platform.t) ->
      Printf.printf "%-12s %3d cores, f32 %8.0f GF, bf16 %8.0f GF, %6.0f GB/s\n"
        p.Platform.name (Platform.cores p)
        (Platform.peak_gflops p Datatype.F32)
        (Platform.peak_gflops p Datatype.BF16)
        p.Platform.mem_bw_gbs)
    Platform.all

let gemm_cmd =
  Cmd.v (Cmd.info "gemm" ~doc:"run and verify a PARLOOPER GEMM")
    Term.(
      const gemm_run $ m_arg $ n_arg $ k_arg $ block_arg $ spec_arg
      $ threads_arg $ dtype_arg $ trace_arg $ telemetry_arg)

let tune_cmd =
  Cmd.v (Cmd.info "tune" ~doc:"auto-tune loop instantiations (modeled)")
    Term.(
      const tune $ m_arg $ n_arg $ k_arg $ block_arg $ dtype_arg
      $ platform_arg $ candidates_arg)

let model_cmd =
  Cmd.v (Cmd.info "model" ~doc:"score one instantiation with the perf model")
    Term.(
      const model $ m_arg $ n_arg $ k_arg $ block_arg $ dtype_arg
      $ platform_arg $ spec_arg $ threads_arg)

let platforms_cmd =
  Cmd.v (Cmd.info "platforms" ~doc:"list modeled platforms")
    Term.(const platforms $ const ())

let () =
  let info = Cmd.info "parlooper" ~doc:"PARLOOPER/TPP kernel toolbox" in
  exit (Cmd.eval (Cmd.group info [ gemm_cmd; tune_cmd; model_cmd; platforms_cmd ]))

(* Command-line front-end for the PARLOOPER/TPP library:

     parlooper gemm  -m 512 -n 512 -k 512 --spec BCa --threads 4
     parlooper gemm  -m 512 -n 512 -k 512 --spec BCa --trace out.json
     parlooper tune  -m 512 -n 512 -k 512 --platform spr --candidates 200
     parlooper model -m 2048 -n 2048 -k 2048 --spec BCa --platform zen4
     parlooper platforms
     parlooper serve --rate 30 --duration 2 --policy deadline --deadline-ms 100

   --trace writes a Chrome trace_event JSON (open in chrome://tracing or
   ui.perfetto.dev) with one span per team thread per loop nest;
   --telemetry prints the registry report (achieved GFLOPS, JIT-cache
   behaviour, perf-model deviation) without writing a trace file. *)

open Cmdliner

let dtype_of_string = function
  | "f32" -> Datatype.F32
  | "bf16" -> Datatype.BF16
  | s -> invalid_arg ("unknown dtype " ^ s)

let m_arg = Arg.(value & opt int 512 & info [ "m" ] ~doc:"GEMM M dimension")
let n_arg = Arg.(value & opt int 512 & info [ "n" ] ~doc:"GEMM N dimension")
let k_arg = Arg.(value & opt int 512 & info [ "k" ] ~doc:"GEMM K dimension")

let block_arg =
  Arg.(value & opt int 32 & info [ "block" ] ~doc:"bm = bn = bk block size")

let spec_arg =
  Arg.(
    value & opt string "BCa"
    & info [ "spec" ] ~doc:"loop_spec_string (e.g. 'BCa', 'bcaBCb')")

let threads_arg =
  Arg.(value & opt int 4 & info [ "threads" ] ~doc:"team size")

let dtype_arg =
  Arg.(value & opt string "f32" & info [ "dtype" ] ~doc:"f32 or bf16")

let platform_arg =
  Arg.(
    value & opt string "spr"
    & info [ "platform" ] ~doc:"spr | gvt3 | zen4 | adl | host")

let candidates_arg =
  Arg.(value & opt int 200 & info [ "candidates" ] ~doc:"tuning candidates")

let search_arg =
  Arg.(
    value & opt string "exhaustive"
    & info [ "search" ]
        ~doc:
          "candidate exploration: $(b,exhaustive) enumeration or \
           model-guided $(b,beam), $(b,greedy) or $(b,bandit) search")

let beam_width_arg =
  Arg.(
    value & opt int 8
    & info [ "beam-width" ] ~doc:"states kept per step (with --search beam)")

let budget_arg =
  Arg.(
    value & opt int 200
    & info [ "budget" ]
        ~doc:"max candidates the model-guided search may score")

let tune_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~doc:"PRNG seed (with --search bandit)")

let measure_top_arg =
  Arg.(
    value & opt int 0
    & info [ "measure-top" ]
        ~doc:
          "re-rank this many model-best survivors by real measurement on \
           this host (0 = modeled only)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:"write a Chrome trace_event JSON timeline to $(docv)"
        ~docv:"FILE")

let telemetry_arg =
  Arg.(
    value & flag
    & info [ "telemetry" ]
        ~doc:"collect runtime telemetry and print the registry report")

let make_cfg m n k block dtype =
  Gemm.make_config ~bm:block ~bn:block ~bk:block
    ~dtype:(dtype_of_string dtype) ~m ~n ~k ()

(* validate a user-supplied loop spec up front so a typo produces the
   parser's structured diagnostic (reason + position) instead of a raised
   Invalid_spec out of the first dispatch *)
let check_spec spec =
  match Spec_parser.parse_result spec with
  | Ok _ -> ()
  | Error e ->
    Printf.eprintf "invalid loop spec %S: %s\n" spec
      (Spec_parser.error_to_string e);
    exit 1

let gemm_run m n k block spec threads dtype trace telemetry =
  check_spec spec;
  let cfg = make_cfg m n k block dtype in
  let traced = telemetry || trace <> None in
  if traced then begin
    Telemetry.Registry.reset ();
    Telemetry.Registry.enable ()
  end;
  let g = Gemm.create cfg spec in
  let rng = Prng.create 1 in
  let a = Tensor.create (dtype_of_string dtype) [| m; k |] in
  let b = Tensor.create (dtype_of_string dtype) [| k; n |] in
  Tensor.fill_random a rng ~scale:1.0;
  Tensor.fill_random b rng ~scale:1.0;
  let t0 = Telemetry.Clock.now_s () in
  let c = Gemm.run_logical ~nthreads:threads g ~a ~b in
  let dt = Telemetry.Clock.now_s () -. t0 in
  let ok = Tensor.approx_equal ~tol:1e-3 c (Reference.matmul a b) in
  let measured_gflops = Gemm.flops cfg /. dt /. 1e9 in
  Printf.printf "%dx%dx%d %s spec=%s threads=%d: %.2f GFLOPS, correct=%b\n" m
    k n dtype spec threads measured_gflops ok;
  if traced then begin
    (* confront the §II-E model (host platform) with this measurement *)
    let host = Platform.host in
    (try
       let predicted =
         (Gemm_trace.score ~platform:host ~nthreads:threads cfg spec)
           .Perf_model.gflops
       in
       Telemetry.Registry.record_prediction
         ~name:(Printf.sprintf "gemm %dx%dx%d %s" m n k spec)
         ~predicted_gflops:predicted ~measured_gflops
     with _ -> ());
    Telemetry.Registry.disable ();
    Telemetry.Report.print
      ~peak_gflops:
        (Platform.peak_gflops
           ~cores:(min threads (Platform.cores host))
           host (dtype_of_string dtype))
      ~mem_bw_gbs:host.Platform.mem_bw_gbs ();
    match trace with
    | Some path -> (
      try
        Telemetry.Chrome_trace.write path;
        Printf.printf "trace written to %s (open in chrome://tracing)\n" path
      with Sys_error msg ->
        Printf.eprintf "cannot write trace: %s\n" msg;
        exit 1)
    | None -> ()
  end;
  if not ok then exit 1

let tune m n k block dtype platform candidates search_kind beam_width budget
    seed measure_top =
  match Platform.by_name platform with
  | None ->
    Printf.eprintf "unknown platform %s\n" platform;
    exit 1
  | Some p ->
    let cfg = make_cfg m n k block dtype in
    let nthreads = Platform.cores p in
    let print_top ranked =
      List.iteri
        (fun i (e : Autotune.entry) ->
          if i < 10 then
            Printf.printf "  #%-2d %-16s %10.0f GFLOPS (%s)\n" (i + 1)
              e.Autotune.spec e.Autotune.gflops
              (if e.Autotune.predicted_gflops <> None then "measured"
               else "modeled"))
        ranked
    in
    if search_kind = "exhaustive" then begin
      let report =
        Autotune.tune_gemm ~max_candidates:candidates
          (Autotune.Modeled { platform = p; nthreads })
          cfg
      in
      Printf.printf
        "evaluated %d instantiations (%d skipped) in %.2fs; top 10 for %s:\n"
        report.Autotune.evaluated report.Autotune.skipped
        report.Autotune.tuning_seconds p.Platform.name;
      print_top report.Autotune.ranked
    end
    else
      match Search.strategy_of_string search_kind with
      | None ->
        Printf.eprintf
          "unknown search %S (exhaustive | beam | greedy | bandit)\n"
          search_kind;
        exit 1
      | Some s ->
        let strategy =
          match s with
          | Search.Beam { depth; _ } ->
            Search.Beam { width = beam_width; depth }
          | other -> other
        in
        let report =
          Search.search ~strategy ~max_evals:budget ~measure_top ~seed
            ~platform:p ~nthreads cfg
        in
        Printf.printf
          "%s search: scored %d of %d candidates (%.1f%% of the space), \
           measured %d, %.2fs; top 10 for %s:\n"
          (Search.strategy_name strategy)
          report.Search.evaluated report.Search.space
          (100.0
          *. float_of_int report.Search.evaluated
          /. float_of_int (max 1 report.Search.space))
          report.Search.measured report.Search.tuning_seconds p.Platform.name;
        print_top report.Search.ranked;
        List.iter
          (fun (s : Search.step_stat) ->
            Printf.printf
              "  step %-2d generated %-3d scored %-3d pruned %-3d best %.0f\n"
              s.Search.step s.Search.generated s.Search.scored s.Search.pruned
              s.Search.best_gflops)
          report.Search.steps;
        (match report.Search.rank_correlation with
        | Some rho ->
          Printf.printf "  model-vs-measured rank correlation: %+.2f\n" rho
        | None -> ())

let model m n k block dtype platform spec threads =
  match Platform.by_name platform with
  | None ->
    Printf.eprintf "unknown platform %s\n" platform;
    exit 1
  | Some p ->
    check_spec spec;
    let cfg = make_cfg m n k block dtype in
    let r = Gemm_trace.score ~platform:p ~nthreads:threads cfg spec in
    Printf.printf
      "%s on %s with %d threads: %.0f GFLOPS modeled (%.0f%% compute-bound \
       invocations, %.1f MB DRAM reads)\n"
      spec p.Platform.name threads r.Perf_model.gflops
      (100.0 *. r.Perf_model.compute_bound_fraction)
      (r.Perf_model.mem_read_bytes /. 1e6)

let platforms () =
  List.iter
    (fun (p : Platform.t) ->
      Printf.printf "%-12s %3d cores, f32 %8.0f GF, bf16 %8.0f GF, %6.0f GB/s\n"
        p.Platform.name (Platform.cores p)
        (Platform.peak_gflops p Datatype.F32)
        (Platform.peak_gflops p Datatype.BF16)
        p.Platform.mem_bw_gbs)
    Platform.all

(* ---- serve: continuous-batching inference serving demo ---- *)

let rate_arg =
  Arg.(
    value & opt float 20.0
    & info [ "rate" ] ~doc:"mean Poisson arrival rate (requests/s)")

let duration_arg =
  Arg.(
    value & opt float 3.0
    & info [ "duration" ] ~doc:"seconds of synthetic arrivals")

let prompt_min_arg =
  Arg.(value & opt int 4 & info [ "prompt-min" ] ~doc:"min prompt tokens")

let prompt_max_arg =
  Arg.(value & opt int 12 & info [ "prompt-max" ] ~doc:"max prompt tokens")

let tokens_min_arg =
  Arg.(value & opt int 2 & info [ "tokens-min" ] ~doc:"min new tokens")

let tokens_max_arg =
  Arg.(value & opt int 8 & info [ "tokens-max" ] ~doc:"max new tokens")

let deadline_arg =
  Arg.(
    value & opt float 0.0
    & info [ "deadline-ms" ]
        ~doc:"per-request completion SLO in ms (0 disables; goodput counts \
              requests that finish within it)")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "max-queue" ] ~doc:"admission queue bound (excess rejected)")

let batch_arg =
  Arg.(
    value & opt int 8
    & info [ "max-batch" ] ~doc:"max concurrently decoding sessions")

let policy_arg =
  Arg.(
    value & opt string "fcfs"
    & info [ "policy" ] ~doc:"admission policy: fcfs | deadline")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"load-generator seed")

let live_metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "live-metrics" ]
        ~doc:
          "stream periodic live-metrics snapshots (one JSON object per \
           line: counters, gauges, deltas and per-second rates) to $(docv) \
           while serving; '-' streams to stdout"
        ~docv:"FILE")

let live_interval_arg =
  Arg.(
    value & opt int 500
    & info [ "live-interval-ms" ]
        ~doc:"interval between live-metrics snapshots in milliseconds")

let replicas_arg =
  Arg.(
    value & opt int 1
    & info [ "replicas" ]
        ~doc:"decode scheduler replicas behind the router (1 = no router)")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ]
        ~doc:"tensor-parallel shards inside each replica (bit-identical to \
              unsharded)")

let disaggregate_arg =
  Arg.(
    value & flag
    & info [ "disaggregate" ]
        ~doc:"run prefill on a dedicated replica and hand finished KV \
              caches to decode replicas over the handoff channel")

let placement_arg =
  Arg.(
    value & opt string "rr"
    & info [ "placement" ]
        ~doc:"router placement: rr | jsq | deadline")

let hard_kill_arg =
  Arg.(
    value & flag
    & info [ "hard-kill" ]
        ~doc:"hard-kill replica 1 halfway through the run: its in-flight \
              sessions live-migrate to the surviving replicas (requires \
              --replicas >= 2)")

let paged_arg =
  Arg.(
    value & flag
    & info [ "paged" ]
        ~doc:"paged KV storage: fixed-size token blocks from a shared arena \
              with copy-on-write sharing and prompt-prefix deduplication \
              (bit-identical to contiguous)")

let block_size_arg =
  Arg.(
    value & opt int 16
    & info [ "block-size" ] ~doc:"tokens per KV block (with --paged)")

let num_blocks_arg =
  Arg.(
    value & opt int 128
    & info [ "num-blocks" ]
        ~doc:"KV arena size in blocks per pool (with --paged)")

let spec_decode_arg =
  Arg.(
    value & opt int 0
    & info [ "spec-decode" ] ~docv:"K"
        ~doc:"speculative decoding: propose $(docv) draft tokens per round \
              and verify them in one batched pass (0 disables; \
              token-identical to greedy decoding)")

let draft_layers_arg =
  Arg.(
    value & opt int 1
    & info [ "draft-layers" ]
        ~doc:"decoder layers of the draft model (with --spec-decode)")

let sys_prompt_arg =
  Arg.(
    value & opt int 0
    & info [ "sys-prompt" ]
        ~doc:"tokens of a shared system prompt prepended to every request \
              (the workload shape --paged prefix sharing deduplicates)")

let online_tune_arg =
  Arg.(
    value & flag
    & info [ "online-tune" ]
        ~doc:
          "tune serve-path GEMM shapes on a background domain and hot-swap \
           their loop instantiations once a bit-identity check passes \
           (decode outputs are unchanged)")

let serve_trace_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-dir" ] ~docv:"DIR"
        ~doc:
          "dump retained causal request traces (tail-sampled: SLO breaches, \
           faults, sheds, migrations, plus a seeded 1-in-N baseline) into \
           $(docv) after the run; inspect with 'parlooper trace'")

let serve_trace_sample_arg =
  Arg.(
    value & opt int 16
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:
          "baseline sampling rate with --trace-dir: retain roughly one in \
           $(docv) healthy requests alongside every breaching one")

let serve rate duration pmin pmax tmin tmax deadline_ms max_queue max_batch
    policy seed threads replicas shards disaggregate placement hard_kill
    paged block_size num_blocks spec_decode draft_layers sys_prompt
    online_tune trace_dir trace_sample live_metrics live_interval_ms trace
    telemetry =
  if rate <= 0.0 || duration <= 0.0 then begin
    Printf.eprintf "--rate and --duration must be positive\n";
    exit 1
  end;
  if pmin < 1 || pmax < pmin || tmin < 1 || tmax < tmin then begin
    Printf.eprintf "need 1 <= prompt-min <= prompt-max and likewise tokens\n";
    exit 1
  end;
  if block_size < 1 || num_blocks < 1 || spec_decode < 0 || draft_layers < 1
     || sys_prompt < 0
  then begin
    Printf.eprintf
      "need positive --block-size/--num-blocks/--draft-layers and \
       non-negative --spec-decode/--sys-prompt\n";
    exit 1
  end;
  let policy =
    match Serve.Scheduler.policy_of_string policy with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown policy %S (fcfs | deadline)\n" policy;
      exit 1
  in
  let placement =
    match Cluster.Router.placement_of_string placement with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown placement %S (rr | jsq | deadline)\n" placement;
      exit 1
  in
  if replicas < 1 || shards < 1 then begin
    Printf.eprintf "--replicas and --shards must be positive\n";
    exit 1
  end;
  if hard_kill && replicas < 2 then begin
    Printf.eprintf "--hard-kill needs --replicas >= 2 (somewhere to migrate)\n";
    exit 1
  end;
  let clustered = replicas > 1 || shards > 1 || disaggregate in
  Telemetry.Registry.reset ();
  Telemetry.Registry.enable ();
  (match trace_dir with
  | None -> ()
  | Some _ ->
    (* big rings so a whole run's sparse trace events survive; fresh
       trace state so retention and exemplars describe this run only *)
    Telemetry.Recorder.set_capacity 65536;
    Telemetry.Recorder.reset ();
    Telemetry.Trace.reset ();
    Telemetry.Trace.set_baseline (max 1 trace_sample);
    Telemetry.Trace.set_seed seed);
  let rng = Prng.create 7 in
  let llm = Llm.create ~rng ~block:8 Llm.tiny in
  let load =
    { Serve.Load_gen.seed; rate_hz = rate; duration_s = duration;
      prompt_len = Serve.Load_gen.Uniform (pmin, pmax);
      new_tokens = Serve.Load_gen.Uniform (tmin, tmax);
      deadline_s =
        (if deadline_ms > 0.0 then deadline_ms /. 1000.0 else Float.infinity);
      id_base = 0;
      id_stride = 1;
      sys_prompt_len = sys_prompt
    }
  in
  let trace_reqs = Serve.Load_gen.generate load ~vocab:Llm.tiny.Llm.vocab in
  Printf.printf
    "serving %d arrivals (%.0f req/s x %.1fs, prompts %s, new tokens %s) on \
     %s: queue<=%d batch<=%d policy=%s threads=%d%s\n%!"
    (List.length trace_reqs) rate duration
    (Serve.Load_gen.dist_to_string load.Serve.Load_gen.prompt_len)
    (Serve.Load_gen.dist_to_string load.Serve.Load_gen.new_tokens)
    Llm.tiny.Llm.name max_queue max_batch
    (Serve.Scheduler.policy_name policy)
    threads
    (if clustered then
       Printf.sprintf " replicas=%d shards=%d placement=%s%s" replicas shards
         (Cluster.Router.placement_name placement)
         (if disaggregate then " disaggregated" else "")
     else "");
  if paged then
    Printf.printf "paged KV: %d-token blocks, %d-block arena, prefix sharing \
                   on\n%!"
      block_size num_blocks;
  if spec_decode > 0 then
    Printf.printf "speculative decoding: k=%d, %d draft layer%s\n%!"
      spec_decode draft_layers
      (if draft_layers = 1 then "" else "s");
  if online_tune then
    Printf.printf "online tuning: per-shape spec cache + background tuner on\n%!";
  let config =
    { Serve.Scheduler.default_config with
      Serve.Scheduler.max_queue; max_batch; policy;
      nthreads = Some threads; paged; block_size; num_blocks;
      spec_k = spec_decode; draft_layers; online_tune }
  in
  let live_out =
    match live_metrics with
    | None -> None
    | Some "-" -> Some (stdout, false)
    | Some path -> (
      try Some (open_out path, true)
      with Sys_error msg ->
        Printf.eprintf "cannot open %s: %s\n" path msg;
        exit 1)
  in
  let live =
    Option.map
      (fun (out, _) ->
        { Serve.Driver.every_s =
            float_of_int (max 1 live_interval_ms) /. 1000.0;
          out })
      live_out
  in
  let finish_live snapshots =
    match live_out with
    | None -> ()
    | Some (oc, close) ->
      if close then close_out oc;
      Printf.printf "live metrics: %d snapshot%s%s\n%!" snapshots
        (if snapshots = 1 then "" else "s")
        (match live_metrics with
        | Some p when p <> "-" -> " -> " ^ p
        | _ -> "")
  in
  let print_arena pool =
    match Serve.Kv_pool.manager pool with
    | None -> ()
    | Some m ->
      let pins =
        match Serve.Kv_pool.prefix_cache pool with
        | Some p -> Kv.Prefix.pinned p
        | None -> 0
      in
      Printf.printf
        "KV arena: %d/%d blocks free at exit (%d prefix-pinned); fleet \
         totals: %d allocated, %d freed, %d COW copies, %d prefix hits\n%!"
        (Kv.Block_manager.free_blocks m)
        (Kv.Block_manager.num_blocks m)
        pins
        (Telemetry.Counter.value Kv.Block_manager.pages_allocated_name)
        (Telemetry.Counter.value Kv.Block_manager.pages_freed_name)
        (Telemetry.Counter.value Kv.Block_manager.cow_copies_name)
        (Telemetry.Counter.value Kv.Block_manager.prefix_hits_name)
  in
  if not clustered then begin
    let sched = Serve.Scheduler.create ~config llm in
    let o = Serve.Driver.run ?live sched trace_reqs in
    finish_live o.Serve.Driver.snapshots;
    Serve.Metrics.print o.Serve.Driver.summary;
    let pool = Serve.Scheduler.pool sched in
    Printf.printf
      "KV pool: %d created, %d reused, %d free at exit, peak %d rows/layer\n%!"
      (Serve.Kv_pool.created pool) (Serve.Kv_pool.reused pool)
      (Serve.Kv_pool.free_count pool)
      (Serve.Kv_pool.peak_rows pool);
    print_arena pool
  end
  else begin
    let rcfg =
      { Cluster.Router.default_config with
        Cluster.Router.replicas; shards; disaggregate; placement;
        scheduler = config }
    in
    let router =
      match Cluster.Router.create ~config:rcfg llm with
      | Ok r -> r
      | Error e ->
        Printf.eprintf "cannot build cluster: %s\n" e;
        exit 1
    in
    let hk = if hard_kill then Some (duration /. 2.0, 1) else None in
    let o = Cluster.Driver.run ?live ?hard_kill:hk router trace_reqs in
    finish_live o.Cluster.Driver.snapshots;
    List.iter
      (fun (i, s) ->
        Printf.printf "replica %d%s: %s\n" i
          (if i >= replicas then " (prefill)" else "")
          (Serve.Metrics.summary_to_string s))
      o.Cluster.Driver.per_replica;
    Printf.printf "fleet (histograms merged across replicas):\n";
    Serve.Metrics.print o.Cluster.Driver.summary;
    (* created/reused are fleet-wide counters; free/peak are per pool *)
    (match Cluster.Router.pools router with
    | [] -> ()
    | (p :: _) as pools ->
      Printf.printf "KV fleet: %d created, %d reused across %d pools\n%!"
        (Serve.Kv_pool.created p) (Serve.Kv_pool.reused p)
        (List.length pools);
      List.iteri
        (fun i pool ->
          Printf.printf "KV pool %d: %d free at exit, peak %d rows/layer\n%!"
            i
            (Serve.Kv_pool.free_count pool)
            (Serve.Kv_pool.peak_rows pool);
          print_arena pool)
        pools)
  end;
  if online_tune then begin
    (* let in-flight background tunes land, then report and stop the
       tuning domain so the process exits cleanly *)
    ignore (Spec_cache.drain ~timeout_s:10.0);
    let s = Spec_cache.stats () in
    Printf.printf
      "spec cache: %d hits, %d misses, %d hot-swaps, %d rejected, %d tunes\n%!"
      s.Spec_cache.hits s.Spec_cache.misses s.Spec_cache.swaps
      s.Spec_cache.rejected s.Spec_cache.tunes;
    List.iter
      (fun (e : Spec_cache.entry) ->
        Printf.printf "  %-40s %-9s %s\n" e.Spec_cache.shape e.Spec_cache.state
          e.Spec_cache.spec)
      (Spec_cache.entries ());
    Spec_cache.disable ()
  end;
  (match trace_dir with
  | None -> ()
  | Some dir ->
    let retained = Telemetry.Trace.dump ~dir in
    Printf.printf
      "causal traces: %d retained -> %s (inspect: parlooper trace worst \
       --metric ttft --dir %s)\n%!"
      retained dir dir);
  Telemetry.Registry.disable ();
  if telemetry then
    Telemetry.Report.print
      ~peak_gflops:(Platform.peak_gflops Platform.host Datatype.F32)
      ~mem_bw_gbs:Platform.host.Platform.mem_bw_gbs ();
  match trace with
  | Some path -> (
    try
      Telemetry.Chrome_trace.write path;
      Printf.printf "trace written to %s (open in chrome://tracing)\n" path
    with Sys_error msg ->
      Printf.eprintf "cannot write trace: %s\n" msg;
      exit 1)
  | None -> ()

(* ---- chaos: serve loop under seeded deterministic fault injection ---- *)

let chaos_requests_arg =
  Arg.(
    value & opt int 24
    & info [ "requests" ] ~doc:"number of requests in the chaos trace")

let plan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan" ]
        ~doc:
          "fault plan, e.g. 'serve.decode:exn@n3+11;serve.kv.acquire:deny@n2'; \
           rule = site ':' kind ('exn'|'nan'|'deny'|'stall(MS)') ['@' trigger \
           ('nN[+PERIOD]' | 'pPROB')]. Default: a plan covering every fault \
           site class.")

let chaos seed requests plan_str =
  if requests < 1 then begin
    Printf.eprintf "--requests must be positive\n";
    exit 1
  end;
  let plan =
    match plan_str with
    | None -> None
    | Some s -> (
      match Fault.plan_of_string ~seed s with
      | Ok p -> Some p
      | Error msg ->
        Printf.eprintf "invalid fault plan: %s\n" msg;
        exit 1)
  in
  let config = { Serve.Chaos.default with Serve.Chaos.seed; requests; plan } in
  let effective =
    match plan with Some p -> p | None -> Serve.Chaos.default_plan seed
  in
  Printf.printf "chaos: seed %d, %d requests\nplan: %s\n%!" seed requests
    (Fault.plan_to_string effective);
  let r = Serve.Chaos.run ~config () in
  print_string (Serve.Chaos.report_to_string r);
  if r.Serve.Chaos.injected = 0 then
    Printf.eprintf "warning: plan injected no faults\n";
  if r.Serve.Chaos.violations <> [] then exit 1

(* ---- recorder: flight-recorder dump / check utilities ---- *)

let recorder_dump out_dir threads cluster =
  Telemetry.Registry.reset ();
  Telemetry.Registry.enable ();
  Telemetry.Recorder.set_enabled true;
  Telemetry.Recorder.set_dump_dir (Some out_dir);
  if cluster then begin
    (* a short 2-replica serve merges every replica's recorder events
       into one dump: the Chrome trace gets one process lane per replica
       (events labelled "replica:<i>") alongside the worker threads *)
    Telemetry.Recorder.set_capacity 65536;
    Telemetry.Recorder.reset ();
    let rng = Prng.create 7 in
    let llm = Llm.create ~rng ~block:8 Llm.tiny in
    let load =
      { Serve.Load_gen.seed = 42; rate_hz = 60.0; duration_s = 0.3;
        prompt_len = Serve.Load_gen.Uniform (4, 10);
        new_tokens = Serve.Load_gen.Uniform (2, 6);
        deadline_s = Float.infinity; id_base = 0; id_stride = 1;
        sys_prompt_len = 0 }
    in
    let reqs = Serve.Load_gen.generate load ~vocab:Llm.tiny.Llm.vocab in
    let rcfg =
      { Cluster.Router.default_config with Cluster.Router.replicas = 2 }
    in
    match Cluster.Router.create ~config:rcfg llm with
    | Error e ->
      Printf.eprintf "cannot build cluster: %s\n" e;
      exit 1
    | Ok router -> ignore (Cluster.Driver.run router reqs)
  end
  else begin
    (* a small pooled GEMM exercises every instrumented seam — pool
       dispatch, barrier arrivals, JIT compile, kernel begin/end — so the
       dump demonstrates a multi-thread timeline *)
    let threads = max 1 threads in
    let dim = 64 and block = 32 in
    let spec = "BCa" in
    let cfg = make_cfg dim dim dim block "f32" in
    let g = Gemm.create cfg spec in
    let rng = Prng.create 1 in
    let a = Tensor.create Datatype.F32 [| dim; dim |] in
    let b = Tensor.create Datatype.F32 [| dim; dim |] in
    Tensor.fill_random a rng ~scale:1.0;
    Tensor.fill_random b rng ~scale:1.0;
    ignore (Gemm.run_logical ~nthreads:threads g ~a ~b)
  end;
  match Telemetry.Recorder.post_mortem ~reason:"cli.recorder.dump" with
  | Some prefix ->
    Printf.printf "flight dump: %s.{txt,trace.json} (%d events from %d \
                   threads%s)\n"
      prefix
      (List.length (Telemetry.Recorder.events ()))
      (List.length (Telemetry.Recorder.tids ()))
      (if cluster then ", replica lanes merged" else "")
  | None ->
    Printf.eprintf "no dump produced (recorder disabled or no events)\n";
    exit 1

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let recorder_check dir require_fault =
  let entries =
    try Sys.readdir dir
    with Sys_error msg ->
      Printf.eprintf "cannot read %s: %s\n" dir msg;
      exit 1
  in
  let traces =
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".trace.json")
    |> List.sort compare
  in
  if traces = [] then begin
    Printf.eprintf "no *.trace.json flight dumps in %s\n" dir;
    exit 1
  end;
  let fault_seen = ref false in
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      (match Telemetry.Json_check.check s with
      | Ok () -> ()
      | Error m ->
        Printf.eprintf "%s: malformed trace JSON: %s\n" path m;
        exit 1);
      if contains_sub s "\"cat\":\"fault\"" then fault_seen := true;
      Printf.printf "%s: valid (%d bytes)\n" path n)
    traces;
  if require_fault && not !fault_seen then begin
    Printf.eprintf
      "no fault event (\"cat\":\"fault\") in any dump under %s\n" dir;
    exit 1
  end;
  Printf.printf "checked %d dump(s)%s\n" (List.length traces)
    (if !fault_seen then ", fault events present" else "")

(* ---- trace: retained causal-timeline lookup ---- *)

let read_whole_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let trace_lookup_dir_arg =
  Arg.(
    value
    & opt string "/tmp/parlooper-traces"
    & info [ "dir" ] ~docv:"DIR"
        ~doc:"trace dump directory (written by serve --trace-dir)")

let trace_id_arg =
  Arg.(
    required
    & pos 0 (some int) None
    & info [] ~docv:"ID" ~doc:"trace id (= request id) to print")

let trace_metric_arg =
  Arg.(
    value & opt string "ttft"
    & info [ "metric" ] ~doc:"latency metric: ttft | tpot")

let trace_require_decode_arg =
  Arg.(
    value & flag
    & info [ "require-decode" ]
        ~doc:"fail unless the resolved trace contains at least one decode \
              span (per index.txt)")

let print_trace_file dir id =
  let path = Filename.concat dir (Printf.sprintf "trace-%d.txt" id) in
  match read_whole_file path with
  | s -> print_string s
  | exception Sys_error _ ->
    Printf.eprintf
      "no retained trace %d under %s (not sampled, or the dump directory is \
       stale — see %s)\n"
      id dir
      (Filename.concat dir "index.txt");
    exit 1

let trace_show id dir = print_trace_file dir id

(* index.txt rows: "id reason events decode_spans" *)
let index_row dir id =
  match read_whole_file (Filename.concat dir "index.txt") with
  | exception Sys_error _ -> None
  | s ->
    String.split_on_char '\n' s
    |> List.find_map (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | [ id'; reason; events; spans ]
          when int_of_string_opt id' = Some id ->
          Option.bind (int_of_string_opt events) (fun ev ->
              Option.map
                (fun sp -> (reason, ev, sp))
                (int_of_string_opt spans))
        | _ -> None)

let trace_worst metric dir require_decode =
  if metric <> "ttft" && metric <> "tpot" then begin
    Printf.eprintf "unknown metric %S (ttft | tpot)\n" metric;
    exit 1
  end;
  (* exemplars.txt rows: "metric value_ms id"; worst = largest value *)
  let rows =
    match read_whole_file (Filename.concat dir "exemplars.txt") with
    | exception Sys_error msg ->
      Printf.eprintf "cannot read exemplars under %s: %s\n" dir msg;
      exit 1
    | s ->
      String.split_on_char '\n' s
      |> List.filter_map (fun line ->
          match String.split_on_char ' ' (String.trim line) with
          | [ m; v; id ] when m = metric ->
            Option.bind (float_of_string_opt v) (fun v ->
                Option.map (fun id -> (v, id)) (int_of_string_opt id))
          | _ -> None)
  in
  match List.sort (fun a b -> compare b a) rows with
  | [] ->
    Printf.eprintf "no %s exemplar links a retained trace under %s\n" metric
      dir;
    exit 1
  | (v, id) :: _ ->
    (match index_row dir id with
    | Some (reason, events, spans) ->
      Printf.printf
        "worst %s: %.3f ms -> trace %d (%s, %d events, %d decode spans)\n"
        metric v id reason events spans;
      if require_decode && spans < 1 then begin
        Printf.eprintf "trace %d has no decode span\n" id;
        exit 1
      end
    | None ->
      Printf.printf "worst %s: %.3f ms -> trace %d\n" metric v id;
      if require_decode then begin
        Printf.eprintf "cannot verify decode spans: no index row for %d\n" id;
        exit 1
      end);
    print_trace_file dir id

let trace_cmd =
  let show =
    Cmd.v
      (Cmd.info "show"
         ~doc:"print the retained causal timeline of one request by trace id")
      Term.(const trace_show $ trace_id_arg $ trace_lookup_dir_arg)
  in
  let worst =
    Cmd.v
      (Cmd.info "worst"
         ~doc:
           "resolve the worst retained latency exemplar (largest observed \
            value of --metric) to its causal timeline and print it")
      Term.(
        const trace_worst $ trace_metric_arg $ trace_lookup_dir_arg
        $ trace_require_decode_arg)
  in
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "inspect retained causal request traces (written by serve \
          --trace-dir)")
    [ show; worst ]

let recorder_out_arg =
  Arg.(
    value
    & opt string "/tmp/parlooper-flight"
    & info [ "out" ] ~doc:"directory to write the dump into" ~docv:"DIR")

let recorder_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~doc:"dump directory to check" ~docv:"DIR")

let require_fault_arg =
  Arg.(
    value & flag
    & info [ "require-fault" ]
        ~doc:"fail unless at least one dump contains a fault event")

let recorder_cluster_arg =
  Arg.(
    value & flag
    & info [ "cluster" ]
        ~doc:
          "demo workload is a short 2-replica serve instead of a pooled \
           GEMM; the Chrome trace carries one process lane per replica")

let recorder_cmd =
  let dump =
    Cmd.v
      (Cmd.info "dump"
         ~doc:
           "run a small demo workload (pooled GEMM, or a 2-replica serve \
            with --cluster) with the flight recorder armed and snapshot \
            the rings into a dump directory")
      Term.(
        const recorder_dump $ recorder_out_arg $ threads_arg
        $ recorder_cluster_arg)
  in
  let check =
    Cmd.v
      (Cmd.info "check"
         ~doc:
           "validate every *.trace.json flight dump in a directory \
            (well-formed JSON; with --require-fault, at least one \
            injected-fault event)")
      Term.(const recorder_check $ recorder_dir_arg $ require_fault_arg)
  in
  Cmd.group
    (Cmd.info "recorder" ~doc:"flight-recorder dump and check utilities")
    [ dump; check ]

let gemm_cmd =
  Cmd.v (Cmd.info "gemm" ~doc:"run and verify a PARLOOPER GEMM")
    Term.(
      const gemm_run $ m_arg $ n_arg $ k_arg $ block_arg $ spec_arg
      $ threads_arg $ dtype_arg $ trace_arg $ telemetry_arg)

let tune_cmd =
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "auto-tune loop instantiations: exhaustive enumeration or \
          model-guided search (beam / greedy / bandit), modeled with \
          optional measured refinement")
    Term.(
      const tune $ m_arg $ n_arg $ k_arg $ block_arg $ dtype_arg
      $ platform_arg $ candidates_arg $ search_arg $ beam_width_arg
      $ budget_arg $ tune_seed_arg $ measure_top_arg)

let model_cmd =
  Cmd.v (Cmd.info "model" ~doc:"score one instantiation with the perf model")
    Term.(
      const model $ m_arg $ n_arg $ k_arg $ block_arg $ dtype_arg
      $ platform_arg $ spec_arg $ threads_arg)

let platforms_cmd =
  Cmd.v (Cmd.info "platforms" ~doc:"list modeled platforms")
    Term.(const platforms $ const ())

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"continuous-batching LLM serving demo (synthetic Poisson load)")
    Term.(
      const serve $ rate_arg $ duration_arg $ prompt_min_arg $ prompt_max_arg
      $ tokens_min_arg $ tokens_max_arg $ deadline_arg $ queue_arg $ batch_arg
      $ policy_arg $ seed_arg $ threads_arg $ replicas_arg $ shards_arg
      $ disaggregate_arg $ placement_arg $ hard_kill_arg $ paged_arg
      $ block_size_arg
      $ num_blocks_arg $ spec_decode_arg $ draft_layers_arg $ sys_prompt_arg
      $ online_tune_arg $ serve_trace_dir_arg $ serve_trace_sample_arg
      $ live_metrics_arg $ live_interval_arg $ trace_arg
      $ telemetry_arg)

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "run the serve loop under seeded deterministic fault injection and \
          check liveness, ledger and bit-identical-recovery invariants")
    Term.(const chaos $ seed_arg $ chaos_requests_arg $ plan_arg)

let () =
  let info = Cmd.info "parlooper" ~doc:"PARLOOPER/TPP kernel toolbox" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gemm_cmd; tune_cmd; model_cmd; platforms_cmd; serve_cmd; chaos_cmd;
            recorder_cmd; trace_cmd ]))
